"""Network-wide traffic generator.

Mirrors the paper's custom generator (Section 2.4): it "takes as input
a network topology, the traffic matrix (fraction of traffic for each
ingress-egress pair), routing policy (nodes on each ingress-egress
path), and a traffic profile (e.g., relative popularity of different
application ports)" and emits template-based sessions.

Host identifiers embed the home PoP in the high bits, so any component
can recover a host's ingress node — this plays the role of the paper's
"configuration files that map IP prefixes to their ingress locations".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..obs import get_registry
from ..topology.graph import Topology
from ..topology.routing import Path, PathSet
from .matrix import TrafficMatrix
from .packet import TCP, FiveTuple
from .profiles import SessionTemplate, TrafficProfile, mixed_profile
from .session import Session

#: Bits reserved for the per-site host id within a host identifier.
HOST_BITS = 20
_HOST_MASK = (1 << HOST_BITS) - 1


def host_id(node_index: int, local_id: int) -> int:
    """Compose a host identifier homed at node *node_index*."""
    return (node_index << HOST_BITS) | (local_id & _HOST_MASK)


def home_node_index(host: int) -> int:
    """Recover the home-PoP index from a host identifier."""
    return host >> HOST_BITS


@dataclass
class GeneratorConfig:
    """Tunables for :class:`TrafficGenerator`."""

    hosts_per_node: int = 256
    #: Distinct scanning sources per node; small so each scanner fans
    #: out to many destinations, which is what scan detectors key on.
    scanners_per_node: int = 2
    #: Distinct SYN-flood victim hosts per node; floods concentrate on
    #: few targets, which is what per-destination detectors key on.
    flood_targets_per_node: int = 2
    duration_seconds: float = 300.0
    seed: int = 1


class TrafficGenerator:
    """Generate sessions for a topology / TM / profile triple."""

    def __init__(
        self,
        topology: Topology,
        paths: PathSet,
        matrix: Optional[TrafficMatrix] = None,
        profile: Optional[TrafficProfile] = None,
        config: Optional[GeneratorConfig] = None,
    ):
        self.topology = topology
        self.paths = paths
        self.matrix = matrix or TrafficMatrix.gravity(topology)
        self.profile = profile or mixed_profile()
        self.config = config or GeneratorConfig()
        self._node_index = {name: i for i, name in enumerate(topology.node_names)}

    def _random_host(self, node: str, rng: random.Random) -> int:
        index = self._node_index[node]
        return host_id(index, rng.randrange(self.config.hosts_per_node))

    def _scanner_host(self, node: str, rng: random.Random) -> int:
        index = self._node_index[node]
        return host_id(index, rng.randrange(self.config.scanners_per_node))

    def _build_session(
        self,
        session_id: int,
        ingress: str,
        egress: str,
        template: SessionTemplate,
        rng: random.Random,
    ) -> Session:
        if template.probe:
            # Scans: a small set of sources probing many destinations
            # and ports, so per-source fan-out is high.
            src = self._scanner_host(ingress, rng)
            dst = self._random_host(egress, rng)
            dport = rng.randrange(1, 1024)
            proto = TCP
        elif template.half_open:
            # SYN floods concentrate on a handful of victim hosts.
            src = self._random_host(ingress, rng)
            victim = rng.randrange(self.config.flood_targets_per_node)
            dst = host_id(self._node_index[egress], victim)
            dport = template.server_port
            proto = template.proto
        else:
            src = self._random_host(ingress, rng)
            dst = self._random_host(egress, rng)
            dport = template.server_port
            proto = template.proto
        sport = rng.randrange(1024, 65536)
        packets = template.draw_packet_count(rng)
        nbytes = packets * max(
            40, int(rng.gauss(template.mean_packet_size, template.mean_packet_size * 0.2))
        )
        malicious = rng.random() < template.malicious_fraction
        return Session(
            session_id=session_id,
            tuple=FiveTuple(src, dst, sport, dport, proto),
            app=template.name,
            ingress=ingress,
            egress=egress,
            start_time=rng.random() * self.config.duration_seconds,
            num_packets=packets,
            num_bytes=nbytes,
            malicious=malicious,
            payload_tag=template.payload_tag,
            half_open=template.half_open,
            probe=template.probe,
        )

    def iter_sessions(self, num_sessions: int) -> Iterator[Session]:
        """Yield exactly *num_sessions* sessions in generation order.

        One :class:`random.Random` seeded once drives the whole stream,
        and sessions are drawn in the deterministic traffic-matrix pair
        order — so the emitted sequence is a pure function of
        ``(seed, num_sessions)`` and every consumer (materializing,
        chunking, streaming) observes the *same* sessions.  This is the
        single generation primitive; :meth:`generate` and
        :meth:`generate_chunks` are views over it.
        """
        rng = random.Random(self.config.seed)
        session_id = 0
        for (ingress, egress), count in self.matrix.session_counts(num_sessions).items():
            for _ in range(count):
                template = self.profile.draw_template(rng)
                yield self._build_session(session_id, ingress, egress, template, rng)
                session_id += 1

    def generate(self, num_sessions: int) -> List[Session]:
        """Generate exactly *num_sessions* sessions.

        Pair counts follow the traffic matrix via largest-remainder
        rounding, so the per-pair volume split is deterministic; the
        per-session randomness (templates, hosts, ports, times) is
        driven by the configured seed.  The result is sorted by start
        time (a stable sort over :meth:`iter_sessions` output).
        """
        sessions = list(self.iter_sessions(num_sessions))
        sessions.sort(key=lambda s: s.start_time)
        return sessions

    def generate_chunks(
        self, num_sessions: int, chunk_size: int
    ) -> Iterator[List[Session]]:
        """Stream *num_sessions* sessions as chunks of ``chunk_size``.

        Memory-bounded companion to :meth:`generate`: only one chunk of
        sessions is materialized at a time, so multi-million-session
        runs are bounded by the chunk size, not the trace size.  All
        chunks are slices of one seeded RNG stream — there is no
        per-chunk reseeding — so the concatenation of the chunks is the
        exact :meth:`iter_sessions` sequence for every chunk size, and
        sorting it by start time reproduces :meth:`generate` verbatim.
        (The engine's accounting is order-independent, so streamed and
        materialized runs report identically.)
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        registry = get_registry()
        chunks = registry.counter(
            "traffic_chunks_generated_total",
            "session chunks emitted by the streaming generator",
        )
        streamed = registry.counter(
            "traffic_sessions_streamed_total",
            "sessions emitted through the chunked generator path",
        )
        chunk: List[Session] = []
        for session in self.iter_sessions(num_sessions):
            chunk.append(session)
            if len(chunk) >= chunk_size:
                chunks.inc()
                streamed.inc(len(chunk))
                yield chunk
                chunk = []
        if chunk:
            chunks.inc()
            streamed.inc(len(chunk))
            yield chunk

    def path_of(self, session: Session) -> Path:
        """The routing path the session traverses."""
        return self.paths.path(session.ingress, session.egress)

    def split_by_node(
        self, sessions: List[Session], transit: bool
    ) -> Dict[str, List[Session]]:
        """Per-node traces, exactly as the paper's emulation builds them.

        ``transit=True`` (coordinated deployment): a node's trace holds
        every session whose path it lies on.  ``transit=False``
        (edge-only deployment): only sessions originating or
        terminating at the node.
        """
        traces: Dict[str, List[Session]] = {name: [] for name in self.topology.node_names}
        for session in sessions:
            if transit:
                for node in self.path_of(session):
                    traces[node].append(session)
            else:
                traces[session.ingress].append(session)
                if session.egress != session.ingress:
                    traces[session.egress].append(session)
        return traces
