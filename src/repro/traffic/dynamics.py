"""Traffic dynamics: diurnal variation and bursts (paper §5).

"To handle short-term bursts, we can use conservative values; e.g.,
95%ile values to account for bursty patterns and tradeoff some loss in
optimality for better robustness."

:class:`DiurnalBurstModel` generates the per-interval session volumes
that motivate that advice — a diurnal sinusoid with random multiplicative
bursts — and :func:`headroom_for_percentile` converts an observed
volume history into the headroom factor
:func:`repro.core.reconfigure.conservative_units` consumes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass
class DiurnalBurstModel:
    """Per-interval traffic volume process."""

    base_sessions: int
    #: Relative amplitude of the diurnal sinusoid (0.3 => ±30%).
    diurnal_amplitude: float = 0.3
    #: Intervals per diurnal period (e.g. 288 five-minute intervals/day).
    period: int = 288
    #: Probability that an interval carries a burst.
    burst_probability: float = 0.05
    #: Volume multiplier during a burst.
    burst_multiplier: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_sessions <= 0:
            raise ValueError("base_sessions must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def volume_at(self, interval: int) -> int:
        """Session volume for *interval* (diurnal x optional burst)."""
        phase = 2.0 * math.pi * interval / self.period
        diurnal = 1.0 + self.diurnal_amplitude * math.sin(phase)
        burst = (
            self.burst_multiplier
            if self._rng.random() < self.burst_probability
            else 1.0
        )
        return max(1, int(round(self.base_sessions * diurnal * burst)))

    def series(self, num_intervals: int) -> List[int]:
        """Volumes for *num_intervals* consecutive intervals."""
        return [self.volume_at(t) for t in range(num_intervals)]


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (linear interpolation, 0 <= q <= 100)."""
    if not values:
        raise ValueError("empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def headroom_for_percentile(
    volumes: Sequence[float], q: float = 95.0
) -> float:
    """Headroom factor so mean-volume plans survive *q*-percentile load.

    ``conservative_units(units, headroom_for_percentile(history))``
    implements the paper's 95th-percentile advice against an observed
    volume history.
    """
    if not volumes:
        raise ValueError("empty volume history")
    mean = sum(volumes) / len(volumes)
    if mean <= 0:
        raise ValueError("mean volume must be positive")
    return max(1.0, percentile(volumes, q) / mean)
