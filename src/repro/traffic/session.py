"""Session model.

A :class:`Session` is one end-to-end application conversation between
two hosts, routed along an ingress–egress path.  Sessions are the
generator's unit of output and the NIDS emulation's unit of work: the
emulator processes sessions (with per-packet costs applied
arithmetically) for speed, while :meth:`Session.packets` materializes
the actual packet stream when per-packet fidelity is needed (dispatch
tests, the micro-benchmarks' event engine).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from .packet import FLAG_ACK, FLAG_FIN, FLAG_SYN, FiveTuple, Packet, TCP, UDP
from .profiles import SessionTemplate


@dataclass(frozen=True)
class Session:
    """One generated application session."""

    session_id: int
    tuple: FiveTuple
    app: str
    ingress: str
    egress: str
    start_time: float
    num_packets: int
    num_bytes: int
    malicious: bool = False
    payload_tag: str = ""
    half_open: bool = False
    probe: bool = False

    @property
    def server_port(self) -> int:
        """The session's destination (service) port."""
        return self.tuple.dport

    @property
    def pair(self) -> Tuple[str, str]:
        """The (ingress, egress) routing pair."""
        return (self.ingress, self.egress)

    def packets(self, inter_arrival: float = 0.01) -> Iterator[Packet]:
        """Materialize the session's packet stream.

        TCP sessions open with a SYN / SYN-ACK handshake and close with
        a FIN; UDP sessions are plain datagrams.  Half-open (SYN flood)
        sessions emit only the initial SYN.  Packet directions alternate
        for bidirectional templates, approximating request/response
        traffic; sizes split the session byte count evenly.
        """
        size = max(40, self.num_bytes // max(1, self.num_packets))
        forward = self.tuple
        reverse = self.tuple.reversed()
        clock = self.start_time
        tag = self.payload_tag if self.malicious else ""

        if self.tuple.proto == TCP:
            yield Packet(forward, clock, size=40, flags=FLAG_SYN, payload_tag=tag)
            if self.half_open:
                return
            clock += inter_arrival
            yield Packet(reverse, clock, size=40, flags=FLAG_SYN | FLAG_ACK)
            emitted = 2
        else:
            emitted = 0

        remaining = max(0, self.num_packets - emitted)
        for index in range(remaining):
            clock += inter_arrival
            direction = forward if index % 2 == 0 else reverse
            flags = FLAG_ACK
            if self.tuple.proto == TCP and index == remaining - 1:
                flags |= FLAG_FIN
            yield Packet(direction, clock, size=size, flags=flags, payload_tag=tag)


@dataclass
class TraceStats:
    """Aggregate item counts for a collection of sessions.

    These are the ``T^items`` quantities the LP consumes: distinct
    flows, sessions, sources, and destinations, plus total packets.
    """

    num_sessions: int = 0
    num_packets: int = 0
    num_bytes: int = 0
    sources: set = field(default_factory=set)
    destinations: set = field(default_factory=set)

    def add(self, session: Session) -> None:
        """Fold one session into the aggregate counters."""
        self.num_sessions += 1
        self.num_packets += session.num_packets
        self.num_bytes += session.num_bytes
        self.sources.add(session.tuple.src)
        self.destinations.add(session.tuple.dst)

    @property
    def num_sources(self) -> int:
        """Distinct source hosts observed."""
        return len(self.sources)

    @property
    def num_destinations(self) -> int:
        """Distinct destination hosts observed."""
        return len(self.destinations)


def trace_stats(sessions: List[Session]) -> TraceStats:
    """Compute :class:`TraceStats` over *sessions*."""
    stats = TraceStats()
    for session in sessions:
        stats.add(session)
    return stats


def merge_packet_streams(sessions: List[Session]) -> List[Packet]:
    """Interleave the packet streams of *sessions* in timestamp order.

    Used by the micro-benchmarks to feed a single Bro instance a
    realistic mixed trace rather than one session at a time.
    """
    packets = list(itertools.chain.from_iterable(s.packets() for s in sessions))
    packets.sort(key=lambda p: p.timestamp)
    return packets
