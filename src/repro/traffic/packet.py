"""Packet and flow-key datatypes.

Hosts are opaque integers (a node index in the high bits, a per-site
host id in the low bits — see :mod:`repro.traffic.generator`), which
keeps key material canonical without committing to an address family.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hashing.keys import (
    Aggregation,
    destination_key,
    flow_key,
    key_for,
    session_key,
    source_key,
)

TCP = 6
UDP = 17
ICMP = 1

#: TCP flag bits (subset used by the simulator).
FLAG_SYN = 0x02
FLAG_ACK = 0x10
FLAG_FIN = 0x01
FLAG_RST = 0x04


@dataclass(frozen=True)
class FiveTuple:
    """Unidirectional transport 5-tuple."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int = TCP

    def reversed(self) -> "FiveTuple":
        """The same connection seen in the opposite direction."""
        return FiveTuple(self.dst, self.src, self.dport, self.sport, self.proto)

    def canonical(self) -> "FiveTuple":
        """Direction-independent form (smaller endpoint first)."""
        if (self.src, self.sport) <= (self.dst, self.dport):
            return self
        return self.reversed()

    # -- hash keys --------------------------------------------------------
    def flow_key(self) -> bytes:
        return flow_key(self.src, self.dst, self.sport, self.dport, self.proto)

    def session_key(self) -> bytes:
        return session_key(self.src, self.dst, self.sport, self.dport, self.proto)

    def source_key(self) -> bytes:
        return source_key(self.src)

    def destination_key(self) -> bytes:
        return destination_key(self.dst)

    def key_for(self, aggregation: Aggregation) -> bytes:
        return key_for(aggregation, self.src, self.dst, self.sport, self.dport, self.proto)


@dataclass(frozen=True)
class Packet:
    """A simulated packet.

    ``payload_tag`` stands in for payload content: the signature module
    matches packets whose tag names a known malware pattern, which lets
    the simulator exercise signature analysis without byte payloads.
    """

    tuple: FiveTuple
    timestamp: float
    size: int = 500
    flags: int = FLAG_ACK
    payload_tag: str = ""

    @property
    def is_syn(self) -> bool:
        """A connection-initiating SYN (no ACK)."""
        return bool(self.flags & FLAG_SYN) and not (self.flags & FLAG_ACK)

    @property
    def is_fin(self) -> bool:
        """Whether the FIN flag is set."""
        return bool(self.flags & FLAG_FIN)

    def key_for(self, aggregation: Aggregation) -> bytes:
        return self.tuple.key_for(aggregation)
