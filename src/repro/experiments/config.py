"""Experiment scaling configuration.

The paper's evaluation volumes (100,000-session traces, 30 match-rate
scenarios × 10 rounding iterations, 1000-epoch online runs) are
tractable but slow on a laptop.  ``REPRO_SCALE`` (a float, default
``0.1``) scales the *sizes* of the experiments — session counts,
scenario counts, epochs — without changing their structure, so every
figure keeps its shape at any scale.  Set ``REPRO_SCALE=1`` to run the
paper's full volumes.
"""

from __future__ import annotations

import os


def repro_scale() -> float:
    """The global experiment scale factor from ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "0.1")
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


def scaled(value: int, minimum: int = 1, scale: float = None) -> int:
    """Scale an experiment size, keeping at least *minimum*."""
    factor = repro_scale() if scale is None else scale
    return max(minimum, int(round(value * factor)))
