"""Online-adaptation evaluation (paper Fig. 11).

Runs the FPL strategy on the Internet2 setup without TCAM constraints
against i.i.d. uniform match rates revealed at the end of each epoch,
for several independent runs, and reports the normalized cumulative
regret over time.  The paper observes regret within ±15% of the best
static solution in hindsight, occasionally negative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.nips_milp import (
    DEFAULT_CPU_CAP_PACKETS,
    DEFAULT_MEM_CAP_FLOWS,
    NIPSProblem,
    build_nips_problem,
)
from ..core.online import FPLConfig, OnlineRunResult, run_online_adaptation
from ..nips.adversary import UniformProcess
from ..nips.rules import MatchRateMatrix, unit_rules
from ..topology.datasets import internet2
from .config import scaled

#: Paper constants for Fig. 11.
PAPER_EPOCHS = 1000
PAPER_RUNS = 5

#: Rule count for the online experiments.  The decision LP is solved
#: every epoch, so the online evaluation uses a compact ruleset; the
#: regret metric is normalized and insensitive to this (EXPERIMENTS.md).
ONLINE_NUM_RULES = 10


def build_online_problem(num_rules: int = ONLINE_NUM_RULES, seed: int = 0) -> NIPSProblem:
    """The Fig. 11 instance: Internet2, no TCAM constraints.

    The match matrix embedded here is a placeholder — the adversary
    process supplies the true per-epoch rates.
    """
    topology = internet2().set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS, mem=DEFAULT_MEM_CAP_FLOWS, cam=float(num_rules)
    )
    rules = unit_rules(num_rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(seed))
    return build_nips_problem(topology, rules, match)


@dataclass
class OnlineEvaluation:
    """Fig. 11 data: the regret trajectory of each independent run."""

    runs: List[OnlineRunResult]

    @property
    def final_regrets(self) -> List[float]:
        """Final normalized regret of each run."""
        return [run.final_regret for run in self.runs]

    @property
    def worst_final_regret(self) -> float:
        """Largest final regret across runs (Fig. 11 band check)."""
        return max(self.final_regrets)

    def trajectories(self) -> List[List[Tuple[int, float]]]:
        """Per-run (epoch, normalized regret) series."""
        return [
            [(p.epoch, p.normalized_regret) for p in run.points] for run in self.runs
        ]


def fig11_online_regret(
    num_runs: int = PAPER_RUNS,
    epochs: Optional[int] = None,
    num_rules: int = ONLINE_NUM_RULES,
    perturbation_scale: float = 1e6,
    report_every: Optional[int] = None,
    base_seed: int = 0,
) -> OnlineEvaluation:
    """Run Fig. 11: FPL vs. i.i.d. uniform match rates, *num_runs* runs.

    ``perturbation_scale`` shrinks the theorem's (very conservative)
    perturbation amplitude to a practical level; EXPERIMENTS.md records
    this deviation.
    """
    total_epochs = epochs if epochs is not None else scaled(PAPER_EPOCHS, minimum=50)
    step = report_every if report_every is not None else max(1, total_epochs // 20)
    runs = []
    for run_index in range(num_runs):
        problem = build_online_problem(num_rules=num_rules, seed=base_seed)
        process = UniformProcess(problem, seed=base_seed + 71 * (run_index + 1))
        config = FPLConfig(
            epochs=total_epochs,
            perturbation_scale=perturbation_scale,
            seed=base_seed + run_index,
        )
        runs.append(
            run_online_adaptation(problem, process, config, report_every=step)
        )
    return OnlineEvaluation(runs=runs)


def format_fig11_table(evaluation: OnlineEvaluation) -> str:
    """Render the regret trajectories as an aligned text table."""
    lines = [f"{'epoch':>7} " + " ".join(f"{'run ' + str(i + 1):>8}" for i in range(len(evaluation.runs)))]
    lines.append("-" * len(lines[0]))
    if not evaluation.runs:
        return "\n".join(lines)
    epochs = [p.epoch for p in evaluation.runs[0].points]
    for row_index, epoch in enumerate(epochs):
        cells = []
        for run in evaluation.runs:
            cells.append(f"{run.points[row_index].normalized_regret:>8.3f}")
        lines.append(f"{epoch:>7} " + " ".join(cells))
    return "\n".join(lines)
