"""Optimization-time measurements (paper §2.4 and §3.4).

The paper reports 0.42 s to solve the NIDS LP for a 50-node topology
(CPLEX) and ~220 s for the full NIPS rounding pipeline on the same
scale — both fast enough to re-run every few minutes as traffic
reports arrive.  These drivers measure the same quantities on our
HiGHS-backed solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..core.nids_lp import solve_nids_lp
from ..core.units import build_units
from ..nids.modules import module_set
from ..topology.datasets import random_pop_topology
from ..topology.routing import PathSet
from ..traffic.generator import GeneratorConfig, TrafficGenerator
from ..traffic.profiles import mixed_profile
from .config import scaled


@dataclass
class NIDSTimingResult:
    """Wall-clock of the NIDS LP on one topology size."""

    num_nodes: int
    num_units: int
    num_variables: int
    build_seconds: float
    solve_seconds: float

    @property
    def total_seconds(self) -> float:
        """Model build plus LP solve wall-clock."""
        return self.build_seconds + self.solve_seconds


def time_nids_lp(
    num_nodes: int = 50,
    num_modules: int = 21,
    num_sessions: Optional[int] = None,
    seed: int = 3,
) -> NIDSTimingResult:
    """Measure the NIDS LP solve on a *num_nodes* random topology.

    The session trace only determines the unit volumes; its size does
    not change the LP dimensions, so a scaled trace measures the same
    solve the paper timed.
    """
    sessions_total = (
        num_sessions if num_sessions is not None else scaled(20_000, minimum=2_000)
    )
    topology = random_pop_topology(num_nodes, seed=seed).set_uniform_capacities(
        cpu=1.0, mem=1.0
    )
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology, paths, profile=mixed_profile(), config=GeneratorConfig(seed=seed)
    )
    sessions = generator.generate(sessions_total)
    modules = module_set(num_modules)

    started = time.perf_counter()
    units = build_units(modules, sessions, paths)
    build_elapsed = time.perf_counter() - started

    assignment = solve_nids_lp(units, topology)
    num_variables = sum(len(unit.eligible) for unit in units)
    return NIDSTimingResult(
        num_nodes=num_nodes,
        num_units=len(units),
        num_variables=num_variables,
        build_seconds=build_elapsed,
        solve_seconds=assignment.solve_seconds,
    )
