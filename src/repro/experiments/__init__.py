"""Experiment drivers: one per paper table/figure (see DESIGN.md §4)."""

from .config import repro_scale, scaled
from .nids_network_wide import (
    NetworkWideSetup,
    PerNodeProfile,
    fig6_module_scaling,
    fig7_volume_scaling,
    fig8_per_node_profile,
    format_comparison_table,
)
from .nips_rounding import (
    PipelineTiming,
    RoundingStats,
    build_problem_for_topology,
    evaluate_point,
    fig10_sweep,
    format_fig10_table,
    time_rounding_pipeline,
)
from .online_adaptation import (
    OnlineEvaluation,
    build_online_problem,
    fig11_online_regret,
    format_fig11_table,
)
from .timing import NIDSTimingResult, time_nids_lp

__all__ = [
    "NIDSTimingResult",
    "NetworkWideSetup",
    "OnlineEvaluation",
    "PerNodeProfile",
    "PipelineTiming",
    "RoundingStats",
    "build_online_problem",
    "build_problem_for_topology",
    "evaluate_point",
    "fig10_sweep",
    "fig11_online_regret",
    "fig6_module_scaling",
    "fig7_volume_scaling",
    "fig8_per_node_profile",
    "format_comparison_table",
    "format_fig10_table",
    "format_fig11_table",
    "repro_scale",
    "scaled",
    "time_nids_lp",
    "time_rounding_pipeline",
]
