"""NIPS approximation evaluation (paper Fig. 10 and §3.4 timing).

For each topology and rule-capacity constraint, draw match-rate
scenarios, run the rounding-based algorithms (10 iterations each,
keeping the best), and report the achieved objective as a fraction of
the LP upper bound ``OptLP``.  The paper uses 100 rules with unit
requirements, ``M_ik ~ U[0, 0.01]``, per-node capacities of 400k flows
and 2M packets per 5-minute interval, 30 scenarios, and rule-capacity
fractions 0.05–0.25 on Abilene (Internet2), Geant, and ASes 1221,
1239, and 3257.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.nips_milp import (
    DEFAULT_CPU_CAP_PACKETS,
    DEFAULT_MEM_CAP_FLOWS,
    NIPSProblem,
    build_nips_problem,
    solve_relaxation,
)
from ..core.rounding import RoundingVariant, best_of_roundings
from ..nips.rules import MatchRateMatrix, unit_rules
from ..topology.datasets import by_label
from ..topology.graph import Topology
from ..topology.routing import PathSet
from .config import repro_scale, scaled

#: Paper experiment constants.
PAPER_NUM_RULES = 100
PAPER_SCENARIOS = 30
PAPER_ITERATIONS = 10
PAPER_CAPACITY_FRACTIONS = (0.05, 0.10, 0.15, 0.20, 0.25)
PAPER_TOPOLOGIES = ("Abilene", "Geant", "AS1221", "AS1239", "AS3257")
PAPER_MATCH_HIGH = 0.01


@dataclass
class RoundingStats:
    """Mean/min/max fraction-of-OptLP across scenarios (one Fig. 10 point)."""

    topology: str
    capacity_fraction: float
    variant: RoundingVariant
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(
        cls,
        topology: str,
        capacity_fraction: float,
        variant: RoundingVariant,
        values: Sequence[float],
    ) -> "RoundingStats":
        return cls(
            topology=topology,
            capacity_fraction=capacity_fraction,
            variant=variant,
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
        )


def build_problem_for_topology(
    label: str,
    match_seed: int,
    capacity_fraction: float,
    num_rules: int = PAPER_NUM_RULES,
    match_high: float = PAPER_MATCH_HIGH,
) -> NIPSProblem:
    """One Fig. 10 problem instance: *label* topology, fresh ``M_ik``."""
    topology = by_label(label).set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS,
        mem=DEFAULT_MEM_CAP_FLOWS,
        cam=capacity_fraction * num_rules,
    )
    rules = unit_rules(num_rules)
    path_set = PathSet(topology)
    pairs = [
        (a, b)
        for a in topology.node_names
        for b in topology.node_names
        if a != b
    ]
    match = MatchRateMatrix.uniform(
        rules, pairs, random.Random(match_seed), high=match_high
    )
    return build_nips_problem(topology, rules, match, path_set=path_set)


def evaluate_point(
    label: str,
    capacity_fraction: float,
    variants: Sequence[RoundingVariant],
    num_scenarios: Optional[int] = None,
    iterations: Optional[int] = None,
    num_rules: int = PAPER_NUM_RULES,
    base_seed: int = 0,
) -> List[RoundingStats]:
    """One (topology, capacity) point of Fig. 10 for each variant."""
    scenarios = (
        num_scenarios if num_scenarios is not None else scaled(PAPER_SCENARIOS)
    )
    rounds = iterations if iterations is not None else scaled(PAPER_ITERATIONS, minimum=2)

    fractions: Dict[RoundingVariant, List[float]] = {v: [] for v in variants}
    for scenario in range(scenarios):
        problem = build_problem_for_topology(
            label,
            match_seed=base_seed + 1000 + scenario,
            capacity_fraction=capacity_fraction,
            num_rules=num_rules,
        )
        relaxed = solve_relaxation(problem)
        for variant in variants:
            best = best_of_roundings(
                problem,
                variant,
                iterations=rounds,
                seed=base_seed + scenario,
                relaxed=relaxed,
            )
            fractions[variant].append(best.fraction_of_lp)

    return [
        RoundingStats.of(label, capacity_fraction, variant, values)
        for variant, values in fractions.items()
    ]


def fig10_sweep(
    topologies: Sequence[str] = PAPER_TOPOLOGIES,
    capacity_fractions: Sequence[float] = PAPER_CAPACITY_FRACTIONS,
    variants: Sequence[RoundingVariant] = (
        RoundingVariant.LP,
        RoundingVariant.GREEDY_LP,
    ),
    num_scenarios: Optional[int] = None,
    iterations: Optional[int] = None,
    num_rules: Optional[int] = None,
) -> List[RoundingStats]:
    """The full Fig. 10 sweep.

    At reduced ``REPRO_SCALE`` the rule count is lowered for the large
    AS topologies (their relaxations grow with #rules × #paths); the
    fraction-of-OptLP metric is insensitive to the rule count, so the
    figure's shape is preserved (see EXPERIMENTS.md).
    """
    results: List[RoundingStats] = []
    for label in topologies:
        if num_rules is not None:
            rules = num_rules
        else:
            rules = PAPER_NUM_RULES
            if repro_scale() < 1.0 and label.upper().startswith("AS"):
                rules = scaled(PAPER_NUM_RULES, minimum=20)
        for fraction in capacity_fractions:
            results.extend(
                evaluate_point(
                    label,
                    fraction,
                    variants,
                    num_scenarios=num_scenarios,
                    iterations=iterations,
                    num_rules=rules,
                )
            )
    return results


def format_fig10_table(results: Sequence[RoundingStats]) -> str:
    """Render Fig. 10 points as an aligned text table."""
    header = (
        f"{'topology':<10} {'cap':>5} {'variant':<18}"
        f" {'mean':>7} {'min':>7} {'max':>7}"
    )
    lines = [header, "-" * len(header)]
    for stat in results:
        lines.append(
            f"{stat.topology:<10} {stat.capacity_fraction:>5.2f}"
            f" {stat.variant.value:<18} {stat.mean:>7.3f}"
            f" {stat.minimum:>7.3f} {stat.maximum:>7.3f}"
        )
    return "\n".join(lines)


@dataclass
class PipelineTiming:
    """§3.4 optimization-time measurement for one topology size."""

    num_nodes: int
    relaxation_seconds: float
    rounding_seconds: float

    @property
    def total_seconds(self) -> float:
        """Relaxation plus rounding wall-clock."""
        return self.relaxation_seconds + self.rounding_seconds


def time_rounding_pipeline(
    num_nodes: int = 50,
    num_rules: int = PAPER_NUM_RULES,
    capacity_fraction: float = 0.10,
    iterations: int = 1,
    seed: int = 0,
) -> PipelineTiming:
    """Wall-clock of the full pipeline on a *num_nodes* topology.

    The paper reports ~220 s on a 50-node topology with CPLEX; most of
    the time goes to the two LP solves, as here.
    """
    from ..topology.datasets import random_pop_topology

    topology = random_pop_topology(num_nodes, seed=seed).set_uniform_capacities(
        cpu=DEFAULT_CPU_CAP_PACKETS,
        mem=DEFAULT_MEM_CAP_FLOWS,
        cam=capacity_fraction * num_rules,
    )
    rules = unit_rules(num_rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(seed))
    problem = build_nips_problem(topology, rules, match)

    started = time.perf_counter()
    relaxed = solve_relaxation(problem)
    relax_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    best_of_roundings(
        problem,
        RoundingVariant.GREEDY_LP,
        iterations=iterations,
        seed=seed,
        relaxed=relaxed,
    )
    rounding_elapsed = time.perf_counter() - started
    return PipelineTiming(
        num_nodes=num_nodes,
        relaxation_seconds=relax_elapsed,
        rounding_seconds=rounding_elapsed,
    )
