"""Network-wide NIDS experiments (paper Figs. 6, 7, 8).

Each driver builds the paper's Internet2 setup — gravity-model traffic
matrix from city populations, shortest-path routing on link distances,
uniform node capacities — plans the coordinated deployment, emulates
both the edge-only and coordinated configurations, and returns the
series the corresponding figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.nids_deployment import NIDSDeployment, plan_deployment
from ..nids.emulation import (
    ComparisonRow,
    DeploymentUsage,
    EmulationConfig,
    Traffic,
    run_emulation,
)
from ..nids.modules import module_set
from ..nids.resources import CostModel, DEFAULT_COST_MODEL
from ..topology.datasets import internet2
from ..topology.graph import Topology
from ..topology.routing import PathSet
from ..traffic.generator import GeneratorConfig, TrafficGenerator
from ..traffic.profiles import mixed_profile
from .config import scaled

#: The paper's experiment constants.
PAPER_SESSIONS = 100_000
PAPER_MODULE_COUNTS = (8, 10, 12, 14, 16, 18, 21)
PAPER_VOLUME_POINTS = (20_000, 40_000, 60_000, 80_000, 100_000)
FULL_MODULES = 21


@dataclass
class NetworkWideSetup:
    """Shared fixture for the Figs. 6–8 experiments."""

    topology: Topology
    paths: PathSet
    generator: TrafficGenerator

    @classmethod
    def internet2(cls, seed: int = 42) -> "NetworkWideSetup":
        """The paper's Internet2 setup with a seeded generator."""
        topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topology)
        generator = TrafficGenerator(
            topology,
            paths,
            profile=mixed_profile(),
            config=GeneratorConfig(seed=seed),
        )
        return cls(topology=topology, paths=paths, generator=generator)

    def deployment(self, sessions, num_modules: int) -> NIDSDeployment:
        """Plan a coordinated deployment for *sessions*."""
        return plan_deployment(
            self.topology, self.paths, module_set(num_modules), sessions
        )


def fig6_module_scaling(
    seed: int = 42,
    sessions_total: Optional[int] = None,
    module_counts: Sequence[int] = PAPER_MODULE_COUNTS,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[ComparisonRow]:
    """Fig. 6: max per-node memory/CPU as the module count grows.

    Traffic volume is fixed (paper: 100,000 sessions) while duplicate
    HTTP/IRC/Login/TFTP instances grow the module set from 8 to 21.
    """
    setup = NetworkWideSetup.internet2(seed)
    config = EmulationConfig(cost_model=cost_model)
    total = sessions_total if sessions_total is not None else scaled(PAPER_SESSIONS)
    sessions = setup.generator.generate(total)
    traffic = Traffic.materialized(setup.generator, sessions)
    rows = []
    for count in module_counts:
        deployment = setup.deployment(sessions, count)
        edge = run_emulation(traffic, deployment.modules, config=config)
        coord = run_emulation(traffic, deployment, config=config)
        rows.append(
            ComparisonRow(
                x=count,
                edge_cpu=edge.max_cpu,
                coord_cpu=coord.max_cpu,
                edge_mem_mb=edge.max_mem_mb,
                coord_mem_mb=coord.max_mem_mb,
            )
        )
    return rows


def fig7_volume_scaling(
    seed: int = 42,
    volume_points: Sequence[int] = PAPER_VOLUME_POINTS,
    num_modules: int = FULL_MODULES,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[ComparisonRow]:
    """Fig. 7: max per-node memory/CPU as traffic volume grows.

    The 21-module deployment is re-planned per volume (the operations
    center would re-run the LP as traffic reports change).
    """
    setup = NetworkWideSetup.internet2(seed)
    config = EmulationConfig(cost_model=cost_model)
    rows = []
    for volume in volume_points:
        sessions = setup.generator.generate(scaled(volume))
        traffic = Traffic.materialized(setup.generator, sessions)
        deployment = setup.deployment(sessions, num_modules)
        edge = run_emulation(traffic, deployment.modules, config=config)
        coord = run_emulation(traffic, deployment, config=config)
        rows.append(
            ComparisonRow(
                x=volume,
                edge_cpu=edge.max_cpu,
                coord_cpu=coord.max_cpu,
                edge_mem_mb=edge.max_mem_mb,
                coord_mem_mb=coord.max_mem_mb,
            )
        )
    return rows


@dataclass
class PerNodeProfile:
    """Fig. 8: per-node CPU/memory under both deployments."""

    nodes: List[str]
    edge: DeploymentUsage
    coordinated: DeploymentUsage

    def rows(self) -> List[Tuple[str, float, float, float, float]]:
        """(node, edge cpu, coord cpu, edge mem MB, coord mem MB)."""
        return [
            (
                node,
                self.edge.cpu(node),
                self.coordinated.cpu(node),
                self.edge.mem_mb(node),
                self.coordinated.mem_mb(node),
            )
            for node in self.nodes
        ]


def fig8_per_node_profile(
    seed: int = 42,
    sessions_total: Optional[int] = None,
    num_modules: int = FULL_MODULES,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> PerNodeProfile:
    """Fig. 8: how coordination redistributes load across the 11 nodes.

    In the edge-only deployment New York (the paper's node 11, the
    heaviest gravity-model endpoint) is the hottest; coordination
    offloads its responsibilities to transit nodes.
    """
    setup = NetworkWideSetup.internet2(seed)
    config = EmulationConfig(cost_model=cost_model)
    total = sessions_total if sessions_total is not None else scaled(PAPER_SESSIONS)
    sessions = setup.generator.generate(total)
    traffic = Traffic.materialized(setup.generator, sessions)
    deployment = setup.deployment(sessions, num_modules)
    edge = run_emulation(traffic, deployment.modules, config=config)
    coord = run_emulation(traffic, deployment, config=config)
    return PerNodeProfile(
        nodes=setup.topology.node_names, edge=edge, coordinated=coord
    )


def format_comparison_table(rows: Sequence[ComparisonRow], x_label: str) -> str:
    """Render a Fig. 6/7 series as an aligned text table."""
    header = (
        f"{x_label:>12} {'edge cpu':>12} {'coord cpu':>12} {'cpu red':>8}"
        f" {'edge MB':>9} {'coord MB':>9} {'mem red':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.x:>12.0f} {row.edge_cpu:>12.0f} {row.coord_cpu:>12.0f}"
            f" {row.cpu_reduction:>7.1%} {row.edge_mem_mb:>9.1f}"
            f" {row.coord_mem_mb:>9.1f} {row.mem_reduction:>7.1%}"
        )
    return "\n".join(lines)
