"""Stable public API for the network-wide NIDS/NIPS reproduction.

``repro.api`` is the supported surface for programmatic users: one
flat namespace re-exporting the blessed entry points of each
subsystem.  Anything importable from here follows the deprecation
policy (old keyword shims emit :class:`DeprecationWarning` for at
least one release before removal); internal module paths may move
without notice.

The facade groups into five areas:

* **planning** — :func:`plan_deployment` / :class:`NIDSDeployment`
  (the measure → LP → manifests pipeline), :func:`solve_nids_lp`,
  :func:`generate_manifests` / :func:`verify_manifests`, and the NIPS
  side (:func:`build_nips_problem`, :func:`solve_relaxation`,
  :func:`best_of_roundings`);
* **emulation** — :func:`run_emulation` over a :class:`Traffic`
  (edge-only when handed module specs, coordinated when handed an
  :class:`NIDSDeployment`), configured by :class:`EmulationConfig`
  with an :class:`ExecutionPolicy` (inline | streamed | sharded),
  plus :func:`compare_deployments` and :class:`BroMode`; the old
  ``emulate_edge`` / ``emulate_coordinated`` (and ``*_stream``) names
  remain as deprecated wrappers;
* **coordination plane** — :func:`run_scenario`,
  :class:`ScenarioConfig`, :func:`standard_scenario`;
* **telemetry** — :class:`MetricsRegistry`, :data:`NULL_REGISTRY`,
  :func:`use_registry` (see ``docs/observability.md``);
* **reporting** — the :class:`Report` classes shared by the figure
  artifacts and metrics snapshots.

Quickstart::

    from repro import api

    deployment = api.quick_nids_deployment()
    registry = api.MetricsRegistry()
    profile = api.run_emulation(
        api.Traffic.materialized(generator, sessions),
        deployment,
        registry=registry,
    )
    api.MetricsSnapshotReport(registry).write(sys.stdout, fmt="json")
"""

from __future__ import annotations

# -- topology + traffic ----------------------------------------------------
from . import __version__, quick_nids_deployment
from .topology import PathSet, Topology, geant, internet2, rocketfuel
from .traffic import TrafficGenerator, TrafficMatrix, mixed_profile

# -- planning (NIDS LP -> manifests, NIPS MILP -> rounding) ---------------
from .core import (
    CoordinatedDispatcher,
    FPLConfig,
    NIDSDeployment,
    NIPSProblem,
    RoundingVariant,
    best_of_roundings,
    build_nips_problem,
    generate_manifests,
    plan_deployment,
    run_online_adaptation,
    solve_nids_lp,
    solve_relaxation,
    verify_manifests,
)

# -- emulation -------------------------------------------------------------
from .nids import (
    BroMode,
    EmulationConfig,
    ExecutionMode,
    ExecutionPolicy,
    Traffic,
    compare_deployments,
    emulate_coordinated,
    emulate_coordinated_stream,
    emulate_edge,
    emulate_edge_stream,
    run_emulation,
)

# -- coordination plane ----------------------------------------------------
from .control import (
    ChaosConfig,
    ChaosResult,
    HACluster,
    HAConfig,
    ScenarioConfig,
    ScenarioResult,
    build_plan,
    run_chaos,
    run_scenario,
    standard_scenario,
)

# -- scenario sweeps -------------------------------------------------------
from .sweep import (
    SweepCell,
    SweepSpec,
    consolidate,
    load_spec,
    run_sweep,
)

# -- telemetry -------------------------------------------------------------
from .obs import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
    use_registry,
)

# -- reporting -------------------------------------------------------------
from .reporting import (
    ComparisonReport,
    ControlEpochsReport,
    MetricsSnapshotReport,
    MicrobenchReport,
    PerNodeReport,
    RegretReport,
    Report,
    RoundingReport,
)

__all__ = [
    # topology + traffic
    "PathSet",
    "Topology",
    "TrafficGenerator",
    "TrafficMatrix",
    "geant",
    "internet2",
    "mixed_profile",
    "rocketfuel",
    # planning
    "CoordinatedDispatcher",
    "FPLConfig",
    "NIDSDeployment",
    "NIPSProblem",
    "RoundingVariant",
    "best_of_roundings",
    "build_nips_problem",
    "generate_manifests",
    "plan_deployment",
    "quick_nids_deployment",
    "run_online_adaptation",
    "solve_nids_lp",
    "solve_relaxation",
    "verify_manifests",
    # emulation
    "BroMode",
    "EmulationConfig",
    "ExecutionMode",
    "ExecutionPolicy",
    "Traffic",
    "compare_deployments",
    "emulate_coordinated",
    "emulate_coordinated_stream",
    "emulate_edge",
    "emulate_edge_stream",
    "run_emulation",
    # coordination plane
    "ChaosConfig",
    "ChaosResult",
    "HACluster",
    "HAConfig",
    "ScenarioConfig",
    "ScenarioResult",
    "build_plan",
    "run_chaos",
    "run_scenario",
    "standard_scenario",
    # scenario sweeps
    "SweepCell",
    "SweepSpec",
    "consolidate",
    "load_spec",
    "run_sweep",
    # telemetry
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    # reporting
    "ComparisonReport",
    "ControlEpochsReport",
    "MetricsSnapshotReport",
    "MicrobenchReport",
    "PerNodeReport",
    "RegretReport",
    "Report",
    "RoundingReport",
    "__version__",
]
