"""Gravity-model traffic matrices.

Both evaluations in the paper derive their traffic matrices from a
gravity model over city populations (Sections 2.4 and 3.4, following
Roughan et al.): the fraction of total traffic entering at ingress
``s`` and leaving at egress ``d`` is proportional to
``pop(s) * pop(d)``.

We expose the model as a plain ``{(ingress, egress): fraction}`` map
(fractions over ordered pairs, summing to 1) which the traffic
generator and the optimization drivers consume directly.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from .graph import Topology

PairFractions = Dict[Tuple[str, str], float]


def gravity_fractions(
    populations: Mapping[str, float], include_self_pairs: bool = False
) -> PairFractions:
    """Gravity-model fractions over ordered node pairs.

    Parameters
    ----------
    populations:
        City population (or any attraction mass) per node.  Must be
        positive.
    include_self_pairs:
        Whether traffic both entering and leaving at the same PoP is
        modeled.  The paper's evaluations route between distinct
        locations, so the default excludes self pairs.
    """
    names = list(populations)
    if not names:
        raise ValueError("empty population map")
    for name, pop in populations.items():
        if pop <= 0:
            raise ValueError(f"non-positive population for {name!r}")

    weights: PairFractions = {}
    for src in names:
        for dst in names:
            if src == dst and not include_self_pairs:
                continue
            weights[(src, dst)] = populations[src] * populations[dst]
    total = sum(weights.values())
    return {pair: weight / total for pair, weight in weights.items()}


def gravity_matrix(
    topology: Topology,
    total_volume: float,
    include_self_pairs: bool = False,
) -> PairFractions:
    """Gravity-model volumes: *total_volume* split across ordered pairs."""
    fractions = gravity_fractions(topology.populations, include_self_pairs)
    return {pair: fraction * total_volume for pair, fraction in fractions.items()}


def ingress_fractions(fractions: PairFractions) -> Dict[str, float]:
    """Total fraction of traffic entering the network at each ingress."""
    totals: Dict[str, float] = {}
    for (src, _), fraction in fractions.items():
        totals[src] = totals.get(src, 0.0) + fraction
    return totals


def heaviest_pair(fractions: PairFractions) -> Tuple[str, str]:
    """The ordered pair carrying the largest traffic fraction."""
    return max(fractions, key=lambda pair: fractions[pair])
