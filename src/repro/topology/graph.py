"""Network topology model.

A :class:`Topology` is an undirected graph of NIDS/NIPS-capable nodes
(PoPs or routers) with per-node resource capacities and per-link
distances.  It is a thin, typed wrapper over :mod:`networkx` so routing
can reuse the library's shortest-path machinery while the rest of the
code sees a stable domain vocabulary.

Capacities follow the paper's general heterogeneous model: each node
``R_j`` carries ``CpuCap_j`` (packets or CPU-seconds per interval),
``MemCap_j`` (flows or bytes), and — for NIPS — ``CamCap_j`` (TCAM rule
slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx


@dataclass
class NodeSpec:
    """A network location capable of hosting NIDS/NIPS functions."""

    name: str
    city: str = ""
    population: float = 1.0
    cpu_capacity: float = 1.0
    mem_capacity: float = 1.0
    cam_capacity: float = 0.0
    latitude: float = 0.0
    longitude: float = 0.0


@dataclass(frozen=True)
class LinkSpec:
    """An undirected link with a routing distance (km, weight, or hops)."""

    a: str
    b: str
    distance: float = 1.0

    def endpoints(self) -> Tuple[str, str]:
        """The link's two node names."""
        return (self.a, self.b)


class Topology:
    """Undirected capacitated network of candidate NIDS/NIPS locations."""

    def __init__(self, name: str, nodes: Iterable[NodeSpec], links: Iterable[LinkSpec]):
        self.name = name
        self._nodes: Dict[str, NodeSpec] = {}
        self._graph = nx.Graph()
        for node in nodes:
            if node.name in self._nodes:
                raise ValueError(f"duplicate node {node.name!r}")
            self._nodes[node.name] = node
            self._graph.add_node(node.name)
        for link in links:
            if link.a not in self._nodes or link.b not in self._nodes:
                raise ValueError(f"link {link} references unknown node")
            if link.distance <= 0:
                raise ValueError(f"link {link} has non-positive distance")
            self._graph.add_edge(link.a, link.b, distance=float(link.distance))
        if len(self._nodes) and not nx.is_connected(self._graph):
            raise ValueError(f"topology {name!r} is not connected")

    # -- node access ------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        """Node names in insertion order (stable across runs)."""
        return list(self._nodes)

    def node(self, name: str) -> NodeSpec:
        """The :class:`NodeSpec` named *name*."""
        return self._nodes[name]

    def nodes(self) -> Iterator[NodeSpec]:
        """Iterate all node specs in insertion order."""
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    # -- link access ------------------------------------------------------
    @property
    def links(self) -> List[LinkSpec]:
        """All links as :class:`LinkSpec` values."""
        return [
            LinkSpec(a, b, data["distance"]) for a, b, data in self._graph.edges(data=True)
        ]

    def degree(self, name: str) -> int:
        """Number of links incident to *name*."""
        return int(self._graph.degree[name])

    def neighbors(self, name: str) -> List[str]:
        """Sorted adjacent node names."""
        return sorted(self._graph.neighbors(name))

    def link_distance(self, a: str, b: str) -> float:
        """Routing distance of the (a, b) link."""
        return float(self._graph.edges[a, b]["distance"])

    # -- capacity mutation --------------------------------------------------
    def set_uniform_capacities(
        self,
        cpu: Optional[float] = None,
        mem: Optional[float] = None,
        cam: Optional[float] = None,
    ) -> "Topology":
        """Set the same capacity on every node (the paper's default setup).

        Returns ``self`` for chaining.  ``None`` leaves a dimension
        untouched, so NIDS experiments can set CPU/memory while NIPS
        experiments later add TCAM capacities.
        """
        for node in self._nodes.values():
            if cpu is not None:
                node.cpu_capacity = float(cpu)
            if mem is not None:
                node.mem_capacity = float(mem)
            if cam is not None:
                node.cam_capacity = float(cam)
        return self

    def scale_capacity(self, name: str, cpu_factor: float = 1.0, mem_factor: float = 1.0) -> None:
        """Scale one node's capacities (used by provisioning what-ifs)."""
        node = self._nodes[name]
        node.cpu_capacity *= cpu_factor
        node.mem_capacity *= mem_factor

    # -- populations --------------------------------------------------------
    @property
    def populations(self) -> Dict[str, float]:
        """City populations keyed by node name (gravity-model input)."""
        return {name: spec.population for name, spec in self._nodes.items()}

    @property
    def total_population(self) -> float:
        """Sum of all node populations."""
        return sum(spec.population for spec in self._nodes.values())

    # -- interop ------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (treat as read-only)."""
        return self._graph

    def copy(self) -> "Topology":
        """Deep copy (capacity edits on the copy leave the original alone)."""
        nodes = [
            NodeSpec(
                name=n.name,
                city=n.city,
                population=n.population,
                cpu_capacity=n.cpu_capacity,
                mem_capacity=n.mem_capacity,
                cam_capacity=n.cam_capacity,
                latitude=n.latitude,
                longitude=n.longitude,
            )
            for n in self._nodes.values()
        ]
        return Topology(self.name, nodes, self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.name!r}, nodes={len(self)}, links={len(self.links)})"
