"""Built-in evaluation topologies.

The paper evaluates on the Internet2 (Abilene) backbone, the Geant
educational backbone, and three tier-1 ISP topologies inferred by
Rocketfuel (AS 1221 Telstra, AS 1239 Sprint, AS 3257 Tiscali).

* :func:`internet2` encodes the real 11-PoP Abilene topology with its
  14 links, approximate fiber distances, and metro populations — node
  11 is New York, matching the paper's Fig. 8 discussion.
* :func:`geant` encodes a 22-PoP GÉANT-era European backbone.
* :func:`rocketfuel` substitutes seeded synthetic PoP-level topologies
  with node counts matching the published Rocketfuel PoP maps (44, 52,
  41 PoPs); the exact inferred maps are not redistributable, but the
  optimization behaviour depends only on path structure, scale, and
  population gravity, which the generator preserves (see DESIGN.md).
* :func:`random_pop_topology` produces topologies of any size, used for
  the paper's 50-node optimization-timing measurements.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import LinkSpec, NodeSpec, Topology

# name, city, metro population (millions), latitude, longitude
_INTERNET2_NODES: Sequence[Tuple[str, str, float, float, float]] = (
    ("STTL", "Seattle", 3.44, 47.61, -122.33),
    ("SNVA", "Sunnyvale", 4.46, 37.37, -122.04),
    ("LOSA", "Los Angeles", 12.83, 34.05, -118.24),
    ("DNVR", "Denver", 2.54, 39.74, -104.99),
    ("KSCY", "Kansas City", 2.04, 39.10, -94.58),
    ("HSTN", "Houston", 5.95, 29.76, -95.37),
    ("IPLS", "Indianapolis", 1.76, 39.77, -86.16),
    ("ATLA", "Atlanta", 5.27, 33.75, -84.39),
    ("CHIN", "Chicago", 9.46, 41.88, -87.63),
    ("WASH", "Washington", 5.58, 38.91, -77.04),
    ("NYCM", "New York", 18.90, 40.71, -74.01),
)

# Abilene's 14 backbone links with approximate fiber distances (km).
_INTERNET2_LINKS: Sequence[Tuple[str, str, float]] = (
    ("STTL", "SNVA", 1110.0),
    ("STTL", "DNVR", 1650.0),
    ("SNVA", "LOSA", 550.0),
    ("SNVA", "DNVR", 1530.0),
    ("LOSA", "HSTN", 2210.0),
    ("DNVR", "KSCY", 900.0),
    ("KSCY", "HSTN", 1170.0),
    ("KSCY", "IPLS", 720.0),
    ("HSTN", "ATLA", 1130.0),
    ("IPLS", "ATLA", 690.0),
    ("IPLS", "CHIN", 265.0),
    ("ATLA", "WASH", 870.0),
    ("CHIN", "NYCM", 1150.0),
    ("WASH", "NYCM", 330.0),
)

_GEANT_NODES: Sequence[Tuple[str, str, float, float, float]] = (
    ("AT", "Vienna", 2.40, 48.21, 16.37),
    ("BE", "Brussels", 1.83, 50.85, 4.35),
    ("HR", "Zagreb", 0.79, 45.81, 15.98),
    ("CZ", "Prague", 1.32, 50.08, 14.44),
    ("DK", "Copenhagen", 1.91, 55.68, 12.57),
    ("FR", "Paris", 10.52, 48.86, 2.35),
    ("DE", "Frankfurt", 5.55, 50.11, 8.68),
    ("GR", "Athens", 3.75, 37.98, 23.73),
    ("HU", "Budapest", 2.52, 47.50, 19.04),
    ("IE", "Dublin", 1.67, 53.35, -6.26),
    ("IL", "Tel Aviv", 3.21, 32.08, 34.78),
    ("IT", "Milan", 4.34, 45.46, 9.19),
    ("LU", "Luxembourg", 0.50, 49.61, 6.13),
    ("NL", "Amsterdam", 2.43, 52.37, 4.90),
    ("PL", "Poznan", 1.00, 52.41, 16.93),
    ("PT", "Lisbon", 2.82, 38.72, -9.14),
    ("SK", "Bratislava", 0.61, 48.15, 17.11),
    ("SI", "Ljubljana", 0.53, 46.06, 14.51),
    ("ES", "Madrid", 6.05, 40.42, -3.70),
    ("SE", "Stockholm", 2.05, 59.33, 18.07),
    ("CH", "Geneva", 1.24, 46.20, 6.14),
    ("UK", "London", 13.01, 51.51, -0.13),
)

_GEANT_LINKS: Sequence[Tuple[str, str]] = (
    ("UK", "IE"),
    ("UK", "FR"),
    ("UK", "NL"),
    ("UK", "BE"),
    ("FR", "BE"),
    ("FR", "CH"),
    ("FR", "ES"),
    ("FR", "LU"),
    ("ES", "PT"),
    ("ES", "IT"),
    ("PT", "UK"),
    ("CH", "IT"),
    ("CH", "DE"),
    ("IT", "GR"),
    ("IT", "AT"),
    ("GR", "IL"),
    ("IL", "IT"),
    ("AT", "HU"),
    ("AT", "SI"),
    ("AT", "CZ"),
    ("AT", "DE"),
    ("SI", "HR"),
    ("HR", "HU"),
    ("HU", "SK"),
    ("SK", "CZ"),
    ("CZ", "DE"),
    ("CZ", "PL"),
    ("PL", "DE"),
    ("PL", "SE"),
    ("DE", "NL"),
    ("DE", "DK"),
    ("NL", "BE"),
    ("DK", "SE"),
    ("SE", "DE"),
    ("LU", "DE"),
    ("NL", "DK"),
)

#: Published Rocketfuel PoP-level sizes for the three evaluated ASes.
ROCKETFUEL_SIZES: Dict[int, int] = {1221: 44, 1239: 52, 3257: 41}


def _haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometers."""
    radius = 6371.0
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * radius * math.asin(math.sqrt(a))


def internet2() -> Topology:
    """The 11-node Internet2 (Abilene) backbone.

    Node order matches the paper's numbering: index 10 (the paper's
    "node 11") is New York, the hottest node under the gravity model.
    """
    nodes = [
        NodeSpec(name=name, city=city, population=pop, latitude=lat, longitude=lon)
        for name, city, pop, lat, lon in _INTERNET2_NODES
    ]
    links = [LinkSpec(a, b, dist) for a, b, dist in _INTERNET2_LINKS]
    return Topology("internet2", nodes, links)


def geant() -> Topology:
    """A 22-node GÉANT-era European research backbone."""
    nodes = [
        NodeSpec(name=name, city=city, population=pop, latitude=lat, longitude=lon)
        for name, city, pop, lat, lon in _GEANT_NODES
    ]
    coords = {name: (lat, lon) for name, _, _, lat, lon in _GEANT_NODES}
    links = []
    for a, b in _GEANT_LINKS:
        distance = max(1.0, _haversine_km(*coords[a], *coords[b]))
        links.append(LinkSpec(a, b, distance))
    return Topology("geant", nodes, links)


def random_pop_topology(
    num_nodes: int,
    seed: int = 0,
    name: Optional[str] = None,
    extra_edge_fraction: float = 0.6,
    region_size_km: float = 4000.0,
) -> Topology:
    """A seeded synthetic PoP-level ISP topology.

    Construction mirrors the statistical shape of inferred PoP maps:
    PoPs scattered over a geographic region, populations drawn from a
    heavy-tailed (log-normal) distribution, connectivity formed by a
    Euclidean minimum spanning tree (every real backbone is connected
    and distance-driven) densified with shortcut edges biased toward
    high-population PoPs (backbones over-connect big cities).  The
    result is deterministic in *seed*.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    positions: List[Tuple[float, float]] = [
        (rng.random() * region_size_km, rng.random() * region_size_km)
        for _ in range(num_nodes)
    ]
    populations = [math.exp(rng.gauss(0.6, 0.9)) for _ in range(num_nodes)]

    nodes = [
        NodeSpec(
            name=f"n{i:03d}",
            city=f"pop-{i}",
            population=populations[i],
            latitude=positions[i][0],
            longitude=positions[i][1],
        )
        for i in range(num_nodes)
    ]

    def euclid(i: int, j: int) -> float:
        (x1, y1), (x2, y2) = positions[i], positions[j]
        return max(1.0, math.hypot(x1 - x2, y1 - y2))

    # Prim's MST over Euclidean distances guarantees connectivity.
    in_tree = {0}
    edges: List[Tuple[int, int]] = []
    candidates = set(range(1, num_nodes))
    while candidates:
        best: Optional[Tuple[float, int, int]] = None
        # Sorted: distance ties must break by node id, not set order.
        for i in sorted(in_tree):
            for j in sorted(candidates):
                d = euclid(i, j)
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        _, i, j = best
        edges.append((i, j))
        in_tree.add(j)
        candidates.discard(j)

    # Shortcut edges: sample endpoints weighted by population so hubs
    # emerge, reject duplicates, prefer mid-range distances.
    existing = {tuple(sorted(e)) for e in edges}
    num_extra = int(extra_edge_fraction * num_nodes)
    weights = [p / sum(populations) for p in populations]
    attempts = 0
    while num_extra > 0 and attempts < 50 * num_nodes:
        attempts += 1
        i = rng.choices(range(num_nodes), weights=weights)[0]
        j = rng.choices(range(num_nodes), weights=weights)[0]
        if i == j or tuple(sorted((i, j))) in existing:
            continue
        existing.add(tuple(sorted((i, j))))
        edges.append((i, j))
        num_extra -= 1

    links = [LinkSpec(nodes[i].name, nodes[j].name, euclid(i, j)) for i, j in edges]
    return Topology(name or f"random-{num_nodes}-s{seed}", nodes, links)


def rocketfuel(asn: int) -> Topology:
    """A synthetic PoP-level stand-in for a Rocketfuel-inferred AS.

    Supported ASes and sizes: 1221 (Telstra, 44 PoPs), 1239 (Sprint,
    52 PoPs), 3257 (Tiscali, 41 PoPs).  See DESIGN.md for why the
    substitution preserves the evaluation's behaviour.
    """
    if asn not in ROCKETFUEL_SIZES:
        raise ValueError(
            f"unknown AS {asn}; supported: {sorted(ROCKETFUEL_SIZES)}"
        )
    return random_pop_topology(
        ROCKETFUEL_SIZES[asn], seed=asn, name=f"as{asn}"
    )


#: The five topologies of the paper's NIPS evaluation (Fig. 10), by label.
EVALUATION_TOPOLOGIES: Tuple[str, ...] = (
    "Abilene",
    "Geant",
    "AS1221",
    "AS1239",
    "AS3257",
)


def by_label(label: str) -> Topology:
    """Fetch an evaluation topology by the label used in paper figures."""
    normalized = label.strip().lower().replace(" ", "")
    if normalized in ("abilene", "internet2"):
        return internet2()
    if normalized == "geant":
        return geant()
    if normalized.startswith("as"):
        return rocketfuel(int(normalized[2:]))
    if normalized.startswith("pop"):
        # Sized synthetic backbones ("pop50", "pop200") for scaling
        # studies that need agent counts no real dataset provides.
        return random_pop_topology(int(normalized[3:]), name=normalized)
    raise ValueError(f"unknown topology label {label!r}")
