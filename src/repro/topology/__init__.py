"""Network topology substrate: graphs, datasets, routing, gravity TMs."""

from .datasets import (
    EVALUATION_TOPOLOGIES,
    ROCKETFUEL_SIZES,
    by_label,
    geant,
    internet2,
    random_pop_topology,
    rocketfuel,
)
from .generators import leaf_spine, ring, waxman
from .graph import LinkSpec, NodeSpec, Topology
from .gravity import (
    PairFractions,
    gravity_fractions,
    gravity_matrix,
    heaviest_pair,
    ingress_fractions,
)
from .routing import DistanceMetric, Path, PathSet

__all__ = [
    "DistanceMetric",
    "EVALUATION_TOPOLOGIES",
    "LinkSpec",
    "NodeSpec",
    "PairFractions",
    "Path",
    "PathSet",
    "ROCKETFUEL_SIZES",
    "Topology",
    "by_label",
    "geant",
    "gravity_fractions",
    "gravity_matrix",
    "heaviest_pair",
    "ingress_fractions",
    "internet2",
    "leaf_spine",
    "random_pop_topology",
    "ring",
    "rocketfuel",
    "waxman",
]
