"""Shortest-path routing and downstream-distance computation.

The paper constructs ingress–egress paths for each pair of nodes using
shortest-path routing on link distances (Section 2.4 uses link
distances for Internet2; Section 3.4 uses inferred weights for the ISP
topologies).  A :class:`PathSet` materializes one path per ordered
ingress–egress pair and provides the ``Dist_ikj`` values — the
downstream distance remaining on a path from each node — needed by the
NIPS objective (Eq. 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import networkx as nx

from .graph import Topology


class DistanceMetric(enum.Enum):
    """How ``Dist_ikj`` is measured (paper Section 3.2).

    ``HOPS``: remaining router hops including the node itself — a node
    that is the last on the path still removes one hop of footprint by
    dropping there.  ``FIBER``: remaining fiber distance plus one unit
    for the local hop.  ``UNIT``: all distances are 1, reducing the
    objective to total volume of unwanted traffic dropped.
    """

    HOPS = "hops"
    FIBER = "fiber"
    UNIT = "unit"


@dataclass(frozen=True)
class Path:
    """An ordered ingress-to-egress router path."""

    ingress: str
    egress: str
    nodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("empty path")
        if self.nodes[0] != self.ingress or self.nodes[-1] != self.egress:
            raise ValueError("path endpoints disagree with ingress/egress")

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)

    def position(self, node: str) -> int:
        """0-based index of *node* on the path."""
        return self.nodes.index(node)

    def downstream_nodes(self, node: str) -> Tuple[str, ...]:
        """Nodes strictly after *node* on the path."""
        return self.nodes[self.position(node) + 1 :]

    def upstream_nodes(self, node: str) -> Tuple[str, ...]:
        """Nodes strictly before *node* on the path."""
        return self.nodes[: self.position(node)]

    @property
    def pair(self) -> Tuple[str, str]:
        """The (ingress, egress) tuple."""
        return (self.ingress, self.egress)


class PathSet:
    """All ingress–egress routing paths for a topology.

    Paths are computed once with Dijkstra on link ``distance`` and
    cached; ties are broken deterministically by networkx's traversal
    order so repeated runs see identical routing.  Intra-node "paths"
    (ingress == egress) are single-node paths: such traffic is only
    observable at its own PoP, exactly as in the paper's model.
    """

    def __init__(self, topology: Topology, include_self_pairs: bool = True):
        self.topology = topology
        self._paths: Dict[Tuple[str, str], Path] = {}
        shortest = dict(
            nx.all_pairs_dijkstra_path(topology.graph(), weight="distance")
        )
        for src in topology.node_names:
            for dst in topology.node_names:
                if src == dst and not include_self_pairs:
                    continue
                nodes = tuple(shortest[src][dst]) if src != dst else (src,)
                self._paths[(src, dst)] = Path(src, dst, nodes)

    def path(self, ingress: str, egress: str) -> Path:
        """The routing path for an ordered (ingress, egress) pair."""
        return self._paths[(ingress, egress)]

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._paths.values())

    @property
    def pairs(self) -> List[Tuple[str, str]]:
        """All ordered pairs with materialized paths."""
        return list(self._paths)

    def paths_through(self, node: str) -> List[Path]:
        """All paths on which *node* lies (it can observe that traffic)."""
        return [p for p in self._paths.values() if node in p]

    # -- distances ----------------------------------------------------------
    def downstream_distance(
        self, path: Path, node: str, metric: DistanceMetric = DistanceMetric.HOPS
    ) -> float:
        """``Dist_ikj``: footprint removed by dropping at *node* on *path*.

        With ``HOPS`` and the paper's example (path R1,R2,R3):
        ``Dist = 3, 2, 1`` for R1, R2, R3 respectively.
        """
        position = path.position(node)
        if metric is DistanceMetric.UNIT:
            return 1.0
        if metric is DistanceMetric.HOPS:
            return float(len(path) - position)
        remaining = 0.0
        for a, b in zip(path.nodes[position:], path.nodes[position + 1 :]):
            remaining += self.topology.link_distance(a, b)
        return remaining + 1.0  # the local hop itself

    def distance_table(
        self, metric: DistanceMetric = DistanceMetric.HOPS
    ) -> Dict[Tuple[str, str], Dict[str, float]]:
        """``{(ingress, egress): {node: Dist}}`` for every path."""
        return {
            pair: {
                node: self.downstream_distance(path, node, metric) for node in path.nodes
            }
            for pair, path in self._paths.items()
        }

    # -- statistics ----------------------------------------------------------
    def mean_path_length(self) -> float:
        """Mean hop count over inter-node paths (sanity metric for tests)."""
        lengths = [len(p) for p in self._paths.values() if p.ingress != p.egress]
        return sum(lengths) / len(lengths) if lengths else 0.0
