"""Additional topology families.

The paper evaluates on backbone/ISP topologies; downstream users of a
network-wide NIDS/NIPS planner will want to explore other shapes.
These generators produce:

* :func:`waxman` — the classic random-graph model for router-level
  internets (connection probability decays with distance);
* :func:`ring` — the degenerate worst case for path diversity (every
  transit node sees half the network's traffic);
* :func:`leaf_spine` — a two-tier datacenter fabric, where "ingress"
  means a leaf (top-of-rack) switch and every path is leaf-spine-leaf.

All generators are deterministic in their seed and return fully
populated :class:`~repro.topology.graph.Topology` objects (populations
included, so gravity-model workloads work unchanged).
"""

from __future__ import annotations

import math
import random
from typing import Optional

from .graph import LinkSpec, NodeSpec, Topology


def waxman(
    num_nodes: int,
    seed: int = 0,
    alpha: float = 0.4,
    beta: float = 0.25,
    region_km: float = 3000.0,
    name: Optional[str] = None,
) -> Topology:
    """Waxman random topology.

    Nodes are scattered uniformly; the probability of a link between
    nodes at distance ``d`` is ``alpha * exp(-d / (beta * L))`` where
    ``L`` is the region diagonal.  A Euclidean MST is added first so the
    result is always connected.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = random.Random(seed)
    positions = [
        (rng.random() * region_km, rng.random() * region_km)
        for _ in range(num_nodes)
    ]
    populations = [math.exp(rng.gauss(0.5, 0.8)) for _ in range(num_nodes)]
    nodes = [
        NodeSpec(
            name=f"w{i:03d}",
            city=f"waxman-{i}",
            population=populations[i],
            latitude=positions[i][0],
            longitude=positions[i][1],
        )
        for i in range(num_nodes)
    ]

    def dist(i: int, j: int) -> float:
        (x1, y1), (x2, y2) = positions[i], positions[j]
        return max(1.0, math.hypot(x1 - x2, y1 - y2))

    # MST for connectivity.
    in_tree = {0}
    edges = set()
    remaining = set(range(1, num_nodes))
    while remaining:
        best = min(
            ((dist(i, j), i, j) for i in in_tree for j in remaining),
            key=lambda t: t[0],
        )
        edges.add((best[1], best[2]))
        in_tree.add(best[2])
        remaining.discard(best[2])

    diagonal = region_km * math.sqrt(2.0)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if (i, j) in edges or (j, i) in edges:
                continue
            probability = alpha * math.exp(-dist(i, j) / (beta * diagonal))
            if rng.random() < probability:
                edges.add((i, j))

    links = [LinkSpec(nodes[i].name, nodes[j].name, dist(i, j)) for i, j in edges]
    return Topology(name or f"waxman-{num_nodes}-s{seed}", nodes, links)


def ring(num_nodes: int, seed: int = 0, name: Optional[str] = None) -> Topology:
    """A ring: minimal connectivity, maximal transit concentration.

    The stress case for coordination: path-scoped coordination units
    have many eligible nodes (long paths) while every node also carries
    heavy transit load.
    """
    if num_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    rng = random.Random(seed)
    nodes = [
        NodeSpec(
            name=f"r{i:03d}",
            city=f"ring-{i}",
            population=math.exp(rng.gauss(0.5, 0.6)),
        )
        for i in range(num_nodes)
    ]
    links = [
        LinkSpec(nodes[i].name, nodes[(i + 1) % num_nodes].name, 100.0)
        for i in range(num_nodes)
    ]
    return Topology(name or f"ring-{num_nodes}", nodes, links)


def leaf_spine(
    num_leaves: int,
    num_spines: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """A two-tier leaf-spine fabric.

    Every leaf connects to every spine; hosts home at leaves (spines
    get negligible population so the gravity model sends no traffic to
    them), and every leaf-to-leaf path is exactly three hops — the
    datacenter variant of the paper's deployment question: analyze at
    the leaves, the spines, or split by hash?
    """
    if num_leaves < 2 or num_spines < 1:
        raise ValueError("need >=2 leaves and >=1 spine")
    rng = random.Random(seed)
    nodes = [
        NodeSpec(
            name=f"leaf{i:02d}",
            city=f"rack-{i}",
            population=math.exp(rng.gauss(0.5, 0.4)),
        )
        for i in range(num_leaves)
    ]
    nodes += [
        NodeSpec(name=f"spine{s:02d}", city=f"spine-{s}", population=1e-6)
        for s in range(num_spines)
    ]
    links = [
        LinkSpec(f"leaf{i:02d}", f"spine{s:02d}", 1.0)
        for i in range(num_leaves)
        for s in range(num_spines)
    ]
    return Topology(
        name or f"leafspine-{num_leaves}x{num_spines}", nodes, links
    )
