"""Coordination-plane tests: bus, agents, controller, scenarios.

The §5 dynamics discussion promises an operations center that
"periodically configures the NIDS responsibilities of the different
nodes" from NetFlow-style reports.  These tests exercise the runtime
that keeps that promise under realistic distribution conditions:
message latency/loss/reordering, epoch-versioned delta pushes,
heartbeat-driven failure detection, targeted redistribution, and
recovery/reintegration.
"""

import pytest

from repro.control.agent import Agent, AgentConfig
from repro.control.bus import Bus, BusConfig
from repro.control.epochs import (
    merge_reports,
    stabilize_manifests,
    union_length,
)
from repro.control.failure import HeartbeatMonitor
from repro.control.scenarios import (
    ScenarioConfig,
    ScenarioEvent,
    run_scenario,
    standard_scenario,
)
from repro.core.manifest import NodeManifest
from repro.core.manifest_io import manifest_diff, manifest_to_dict
from repro.hashing.ranges import HashRange
from repro.measurement.flows import TrafficReport


class TestBus:
    def test_delivers_after_latency(self):
        bus = Bus(BusConfig(latency=0.5))
        bus.send("a", "b", "k", {"x": 1}, 10, now=0.0)
        assert bus.deliver("b", 0.4) == []
        [message] = bus.deliver("b", 0.6)
        assert message.payload == {"x": 1}
        assert bus.deliver("b", 0.7) == []  # consumed

    def test_deliver_filters_by_destination(self):
        bus = Bus(BusConfig(latency=0.0))
        bus.send("a", "b", "k", 1, 1, now=0.0)
        bus.send("a", "c", "k", 2, 1, now=0.0)
        assert [m.payload for m in bus.deliver("b", 1.0)] == [1]
        assert bus.pending() == 1

    def test_loss_still_counts_sent_bytes(self):
        bus = Bus(BusConfig(latency=0.0, loss_rate=0.6, seed=5))
        for i in range(200):
            bus.send("a", "b", "k", i, 7, now=0.0)
        assert bus.stats.sent == 200
        assert bus.stats.bytes_sent == 1400
        assert 0 < bus.stats.dropped < 200
        delivered = bus.deliver("b", 1.0)
        assert len(delivered) == 200 - bus.stats.dropped

    def test_jitter_reorders(self):
        bus = Bus(BusConfig(latency=0.1, jitter=0.5, seed=2))
        for i in range(30):
            bus.send("a", "b", "k", i, 1, now=float(i) * 0.01)
        order = [m.payload for m in bus.deliver("b", 10.0)]
        assert sorted(order) == list(range(30))
        assert order != list(range(30))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BusConfig(latency=-1.0)
        with pytest.raises(ValueError):
            BusConfig(loss_rate=1.0)


class TestHeartbeatMonitor:
    def test_sweep_marks_silent_nodes(self):
        monitor = HeartbeatMonitor(["a", "b"], timeout=2.0, now=0.0)
        monitor.beat("a", 1.0)
        assert monitor.sweep(2.5) == ["b"]
        assert not monitor.alive("b")
        assert monitor.alive("a")

    def test_beat_recovers(self):
        monitor = HeartbeatMonitor(["a"], timeout=1.0, now=0.0)
        monitor.sweep(5.0)
        assert not monitor.alive("a")
        assert monitor.beat("a", 6.0) is True
        assert monitor.alive("a")
        assert monitor.beat("a", 7.0) is False  # already live

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(["a"], timeout=0.0)


def _manifest(node, lo, hi):
    return NodeManifest(
        node=node, entries={("c", ("k",)): (HashRange(lo, hi),)}
    )


def _full_push(version, manifest):
    return {
        "version": version,
        "mode": "full",
        "base": None,
        "data": manifest_to_dict(manifest),
    }


def _delta_push(version, base_version, old, new):
    return {
        "version": version,
        "mode": "delta",
        "base": base_version,
        "data": manifest_diff(old, new),
    }


class TestAgent:
    def _agent(self):
        bus = Bus(BusConfig(latency=0.0))
        return Agent("n1", bus, config=AgentConfig(transition_window=2.0)), bus

    def _acks(self, bus):
        return [m.payload for m in bus.deliver("controller", 100.0)
                if m.kind == "ack"]

    def test_applies_full_then_delta(self):
        agent, bus = self._agent()
        m0, m1 = _manifest("n1", 0.0, 0.5), _manifest("n1", 0.0, 0.7)
        bus.send("controller", "n1", "manifest-update", _full_push(0, m0), 1, 0.0)
        agent.step(0.1)
        assert agent.applied_version == 0
        bus.send(
            "controller", "n1", "manifest-update", _delta_push(1, 0, m0, m1), 1, 1.0
        )
        agent.step(1.1)
        assert agent.applied_version == 1
        assert agent.manifest.entries == m1.entries
        statuses = [a["status"] for a in self._acks(bus)]
        assert statuses == ["applied", "applied"]

    def test_duplicate_update_reacked_not_reapplied(self):
        agent, bus = self._agent()
        m0 = _manifest("n1", 0.0, 0.5)
        for t in (0.0, 1.0):
            bus.send(
                "controller", "n1", "manifest-update", _full_push(0, m0), 1, t
            )
            agent.step(t + 0.1)
        assert agent.stats.updates_applied == 1
        assert agent.stats.duplicates_ignored == 1
        assert [a["status"] for a in self._acks(bus)] == ["applied", "duplicate"]

    def test_delta_against_unknown_base_requests_resync(self):
        agent, bus = self._agent()
        m0, m1 = _manifest("n1", 0.0, 0.5), _manifest("n1", 0.0, 0.7)
        # Version-1 delta arrives but version 0 (its base) was lost.
        bus.send(
            "controller", "n1", "manifest-update", _delta_push(1, 0, m0, m1), 1, 0.0
        )
        agent.step(0.1)
        assert agent.applied_version == -1
        [ack] = self._acks(bus)
        assert ack["status"] == "resync"

    def test_dual_manifest_transition_window(self):
        agent, bus = self._agent()
        old, new = _manifest("n1", 0.0, 0.5), _manifest("n1", 0.5, 1.0)
        bus.send("controller", "n1", "manifest-update", _full_push(0, old), 1, 0.0)
        agent.step(0.1)
        assert not agent.in_transition  # first manifest: nothing to retire
        bus.send("controller", "n1", "manifest-update", _full_push(1, new), 1, 1.0)
        agent.step(1.1)
        assert agent.in_transition
        # New connections follow the new manifest only.
        assert agent.responsible_for_new("c", ("k",), 0.75)
        assert not agent.responsible_for_new("c", ("k",), 0.25)
        # Existing connections are answered by old OR new (§5).
        assert agent.responsible_for_existing("c", ("k",), 0.25)
        assert agent.responsible_for_existing("c", ("k",), 0.75)
        agent.step(3.2)  # window (2.0) expired
        assert not agent.in_transition
        assert not agent.responsible_for_existing("c", ("k",), 0.25)

    def test_crash_discards_inbox_and_recovery_is_cold(self):
        agent, bus = self._agent()
        m0 = _manifest("n1", 0.0, 0.5)
        bus.send("controller", "n1", "manifest-update", _full_push(0, m0), 1, 0.0)
        agent.step(0.1)
        assert [a["status"] for a in self._acks(bus)] == ["applied"]
        agent.crash()
        bus.send(
            "controller",
            "n1",
            "manifest-update",
            _full_push(1, _manifest("n1", 0.0, 1.0)),
            1,
            1.0,
        )
        agent.step(1.1)  # dead: drains and discards, acks nothing
        assert self._acks(bus) == []
        assert not agent.responsible_for_new("c", ("k",), 0.25)
        agent.recover()
        assert agent.applied_version == -1
        assert agent.manifest.entries == {}


class TestEpochHelpers:
    def test_union_length_merges_overlaps(self):
        ranges = [
            HashRange(0.0, 0.4),
            HashRange(0.3, 0.5),
            HashRange(0.7, 0.9),
        ]
        assert union_length(ranges) == pytest.approx(0.7)

    def test_merge_reports_sums_pairs(self):
        a = TrafficReport(interval_seconds=1.0, sampling_rate=1.0)
        a.pair_flows[("x", "y")] = 2.0
        a.pair_packets[("x", "y")] = 20.0
        b = TrafficReport(interval_seconds=1.0, sampling_rate=1.0)
        b.pair_flows[("x", "y")] = 3.0
        b.pair_flows[("y", "z")] = 1.0
        b.pair_packets[("x", "y")] = 30.0
        merged = merge_reports([a, b])
        assert merged.pair_flows == {("x", "y"): 5.0, ("y", "z"): 1.0}
        assert merged.pair_packets[("x", "y")] == 50.0
        with pytest.raises(ValueError):
            merge_reports([])

    def test_stabilize_keeps_sub_tolerance_moves(self):
        ident = ("c", ("k",))
        previous = {
            "a": NodeManifest(node="a", entries={ident: (HashRange(0.0, 0.5),)}),
            "b": NodeManifest(node="b", entries={ident: (HashRange(0.5, 1.0),)}),
        }
        proposed = {
            "a": NodeManifest(node="a", entries={ident: (HashRange(0.0, 0.51),)}),
            "b": NodeManifest(node="b", entries={ident: (HashRange(0.51, 1.0),)}),
        }
        stabilized, changed = stabilize_manifests(previous, proposed, 0.02)
        assert changed == set()
        assert stabilized["a"].entries[ident] == (HashRange(0.0, 0.5),)
        assert stabilized["b"].entries[ident] == (HashRange(0.5, 1.0),)

    def test_stabilize_adopts_material_moves(self):
        ident = ("c", ("k",))
        previous = {
            "a": NodeManifest(node="a", entries={ident: (HashRange(0.0, 0.5),)}),
            "b": NodeManifest(node="b", entries={ident: (HashRange(0.5, 1.0),)}),
        }
        proposed = {
            "a": NodeManifest(node="a", entries={ident: (HashRange(0.0, 0.8),)}),
            "b": NodeManifest(node="b", entries={ident: (HashRange(0.8, 1.0),)}),
        }
        stabilized, changed = stabilize_manifests(previous, proposed, 0.02)
        assert changed == {ident}
        assert stabilized["a"].entries[ident] == (HashRange(0.0, 0.8),)

    def test_stabilize_respects_allowed_holders(self):
        """Previous ranges must not resurrect a now-forbidden node."""
        ident = ("c", ("k",))
        previous = {
            "a": NodeManifest(node="a", entries={ident: (HashRange(0.0, 1.0),)}),
        }
        proposed = {
            "a": NodeManifest(node="a", entries={ident: (HashRange(0.0, 0.999),)}),
        }
        stabilized, changed = stabilize_manifests(
            previous, proposed, 0.02, allowed={ident: {"b"}}
        )
        assert changed == {ident}
        assert stabilized["a"].entries[ident] == (HashRange(0.0, 0.999),)


@pytest.fixture(scope="module")
def steady_result():
    return run_scenario(
        ScenarioConfig(epochs=10, base_sessions=400, seed=11)
    )


@pytest.fixture(scope="module")
def standard_result():
    return run_scenario(
        standard_scenario(
            shift_epoch=3,
            fail_epoch=5,
            recover_epoch=9,
            epochs=13,
            base_sessions=400,
            seed=11,
        )
    )


class TestSteadyScenario:
    def test_every_epoch_converges_with_full_coverage(self, steady_result):
        for record in steady_result.records:
            assert record.converged
            assert not record.in_transition
            assert record.coverage >= 0.99

    def test_bootstrap_then_delta_distribution(self, steady_result):
        records = steady_result.records
        assert records[0].resolved == "bootstrap"
        assert records[0].pushes_full > 0
        later = [r for r in records[1:] if r.push_bytes > 0]
        # Whatever is re-pushed after bootstrap rides deltas and
        # undercuts full-manifest distribution.
        for record in later:
            assert record.pushes_full == 0
            assert record.push_bytes < record.full_equivalent_bytes

    def test_periodic_resolves_happen(self, steady_result):
        reasons = [r.resolved for r in steady_result.records]
        assert "periodic" in reasons


class TestFailureScenario:
    def test_heartbeat_timeout_detects_crash(self, standard_result):
        # Crash at epoch 5: last heartbeat reached the controller at
        # t=4.25ish, so the 2.2-epoch timeout trips at the epoch-7 sweep.
        assert standard_result.detection_epoch == {"NYCM": 7}
        detected = {
            r.epoch for r in standard_result.records if r.failed_nodes
        }
        assert min(detected) == 7

    def test_ranges_redistributed_within_deadline(self, standard_result):
        detected = standard_result.detection_epoch["NYCM"]
        redistributed = standard_result.redistribution_epoch["NYCM"]
        assert redistributed - detected <= 2

    def test_detection_gap_counts_as_transition(self, standard_result):
        """Between the crash and the repair the dead node's ranges are
        uncovered — those epochs must be flagged as transition, not
        count against steady-state coverage."""
        by_epoch = {r.epoch: r for r in standard_result.records}
        assert by_epoch[5].in_transition
        assert by_epoch[6].in_transition

    def test_recovery_reintegrates(self, standard_result):
        assert standard_result.reintegration_epoch["NYCM"] >= 9
        final = standard_result.records[-1]
        assert final.failed_nodes == ()
        assert final.converged
        assert final.coverage >= 0.99

    def test_acceptance_criteria_hold(self, standard_result):
        assert standard_result.check_acceptance() == []

    def test_repair_is_delta_sized(self, standard_result):
        [failure] = [
            r for r in standard_result.records if r.resolved == "failure"
        ]
        assert failure.pushes_full == 0
        assert failure.pushes_delta > 0
        assert failure.push_bytes < failure.full_equivalent_bytes
        assert failure.unchanged_entry_fraction >= 0.5


class TestLossyBus:
    def test_retries_converge_under_loss(self):
        result = run_scenario(
            ScenarioConfig(
                epochs=10,
                base_sessions=300,
                seed=3,
                loss_rate=0.3,
                # Tolerate consecutive lost heartbeats without false
                # failure declarations, and disable periodic re-solves
                # so the run isolates retry-driven convergence of one
                # configuration (a resolve in the final epoch would
                # have no time left to retry a lost push).
                heartbeat_timeout=4.5,
                resolve_every=0,
            )
        )
        assert result.controller_stats.retries > 0
        assert result.bus_stats.dropped > 0
        final = result.records[-1]
        assert final.converged
        assert final.coverage >= 0.99

    def test_loss_free_run_never_retries(self, steady_result):
        assert steady_result.controller_stats.retries == 0


class TestScenarioEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ScenarioEvent(epoch=1, kind="explode")
        with pytest.raises(ValueError):
            ScenarioEvent(epoch=1, kind="fail")
        with pytest.raises(ValueError):
            ScenarioEvent(epoch=1, kind="shift", profile="nope")

    def test_traffic_shift_triggers_resolve(self, standard_result):
        shifted = standard_result.records[3]
        assert shifted.resolved in ("drift", "periodic")
        assert shifted.config_version >= 1
