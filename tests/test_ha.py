"""Controller-HA tests: term fencing, election, and epoch handoff.

The failover layer promises (``docs/fault_model.md``) that with N
controller replicas on the same bus, (1) every controller→agent
message carries a monotonic *term* and agents nack anything stale, so
a deposed leader can never push configuration, refresh a lease, or
split-brain the deployment; (2) leader election is deterministic and
replica-unique terms make concurrent candidacies safe; (3) a promoted
standby rebuilds manifest/epoch state from the replicated epoch log
and refuses to push until caught up; and (4) the chaos monitor's
failover invariants (leader-uniqueness, epoch-regression) catch any
implementation that violates the fencing — pinned here by seeded
mutation tests that disable the fences and assert the monitor trips.
"""

import pickle

import pytest

from repro.control.agent import Agent, AgentConfig
from repro.control.bus import Bus, BusConfig
from repro.control.chaos import (
    ChaosConfig,
    ChaosEpochRecord,
    ChaosResult,
    HA_PLAN_REPLICAS,
    InvariantMonitor,
    build_plan,
    run_chaos,
)
from repro.control.controller import ControllerConfig
from repro.control.epochs import EpochRecord
from repro.control.ha import (
    ControllerReplica,
    EpochLogEntry,
    HACluster,
    HAConfig,
    base_identity,
    ha_address,
    replica_name,
)
from repro.control.protocol import (
    KIND_MANIFEST_UPDATE,
    KIND_NACK,
    KIND_PROMOTE,
    KIND_STATE_HANDOFF,
    KIND_TERM_ANNOUNCE,
)
from repro.core.manifest import NodeManifest
from repro.core.manifest_io import manifest_to_dict
from repro.hashing.ranges import HashRange
from repro.nids.modules import STANDARD_MODULES
from repro.obs import MetricsRegistry
from repro.topology import PathSet, by_label


def _manifest(node, key, lo, hi):
    return NodeManifest(node=node, entries={("c", key): (HashRange(lo, hi),)})


def _full_push(version, manifest, term=None, lease=None):
    payload = {
        "version": version,
        "mode": "full",
        "base": None,
        "data": manifest_to_dict(manifest),
    }
    if term is not None:
        payload["term"] = term
    if lease is not None:
        payload["lease_expires_at"] = lease
    return payload


def _quiet_bus():
    return Bus(BusConfig(latency=0.0, jitter=0.0, loss_rate=0.0, seed=1))


def _cluster(replicas=3, leader_lease=2.5, rank_stagger=1.0):
    topology = by_label("Internet2").set_uniform_capacities(cpu=1.0, mem=1.0)
    bus = Bus(BusConfig(latency=0.05, jitter=0.0, loss_rate=0.0, seed=1))
    cluster = HACluster(
        topology,
        PathSet(topology),
        list(STANDARD_MODULES),
        bus,
        ControllerConfig(lease_ttl=2.5),
        HAConfig(
            replicas=replicas,
            leader_lease=leader_lease,
            rank_stagger=rank_stagger,
        ),
    )
    return bus, cluster


class TestNaming:
    def test_replica_zero_keeps_the_base_name(self):
        assert replica_name(0) == "controller"
        assert replica_name(1) == "controller-1"
        assert replica_name(2, "ops") == "ops-2"

    def test_ha_address_round_trips_through_base_identity(self):
        for name in ("controller", "controller-2", "ops-1"):
            assert base_identity(ha_address(name)) == name
            assert base_identity(name) == name


class TestHAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HAConfig(replicas=0)
        with pytest.raises(ValueError):
            HAConfig(leader_lease=0.0)
        with pytest.raises(ValueError):
            HAConfig(rank_stagger=-1.0)
        with pytest.raises(ValueError):
            HAConfig(handoff_window=0)

    def test_dict_and_pickle_round_trips(self):
        config = HAConfig(replicas=5, leader_lease=3.0, rank_stagger=0.5)
        assert HAConfig.from_dict(config.to_dict()) == config
        assert pickle.loads(pickle.dumps(config)) == config


class TestEpochLogEntry:
    def _entry(self):
        return EpochLogEntry(
            term=3,
            version=7,
            reason="periodic",
            max_acked=5,
            manifests=(
                ("a", manifest_to_dict(_manifest("a", "k", 0.0, 0.5))),
                ("b", manifest_to_dict(_manifest("b", "k", 0.5, 1.0))),
            ),
        )

    def test_dict_round_trip_preserves_sorted_manifests(self):
        entry = self._entry()
        rebuilt = EpochLogEntry.from_dict(entry.to_dict())
        assert rebuilt == entry
        assert rebuilt.manifests == tuple(sorted(rebuilt.manifests))

    def test_pickle_round_trip(self):
        entry = self._entry()
        assert pickle.loads(pickle.dumps(entry)) == entry

    def test_manifest_objects_materialize(self):
        objects = self._entry().manifest_objects()
        assert set(objects) == {"a", "b"}
        assert objects["a"].entries[("c", ("k",))] == (HashRange(0.0, 0.5),)


class TestTermArithmetic:
    def test_minted_terms_are_replica_unique(self):
        _bus, cluster = _cluster()
        for replica in cluster.replicas:
            for floor in range(12):
                term = replica._next_term(floor)
                assert term > floor
                assert term % 3 == replica.index
                # Smallest such term: no replica skips a valid slot.
                assert term - floor <= 3

    def test_concurrent_candidates_mint_distinct_terms(self):
        _bus, cluster = _cluster()
        for floor in range(8):
            minted = {r._next_term(floor) for r in cluster.replicas}
            assert len(minted) == 3


class TestElection:
    def _run_leaderless(self, cluster, epochs, down=("controller",)):
        down = frozenset(down)
        for epoch in range(epochs):
            cluster.step(epoch + 0.25, down)
            cluster.finish_epoch(epoch + 0.75, down)

    def test_first_standby_takes_over_and_stagger_suppresses_the_rest(self):
        _bus, cluster = _cluster()
        self._run_leaderless(cluster, 5)
        replica0, replica1, replica2 = cluster.replicas
        assert not replica0.alive
        assert replica1.role == "leader"
        assert replica1.term == 1
        assert replica1.stats.elections == 1
        # Replica 2 heard the new leader before its own (staggered)
        # timeout lapsed, so it never ran for election.
        assert replica2.role == "standby"
        assert replica2.term == 1
        assert replica2.stats.elections == 0
        assert cluster.acting_leader() is replica1

    def test_election_is_deterministic(self):
        histories = []
        for _ in range(2):
            _bus, cluster = _cluster()
            history = []
            down = frozenset({"controller"})
            for epoch in range(6):
                cluster.step(epoch + 0.25, down)
                cluster.finish_epoch(epoch + 0.75, down)
                history.append(
                    tuple(
                        (r.name, r.role, r.term, r.rebuilding)
                        for r in cluster.replicas
                    )
                )
            histories.append(history)
        assert histories[0] == histories[1]

    def test_rebuilding_leader_installs_after_grace_and_settles(self):
        _bus, cluster = _cluster()
        self._run_leaderless(cluster, 6)
        replica1 = cluster.replicas[1]
        assert replica1.role == "leader"
        assert not replica1.rebuilding
        assert replica1.installed_at is not None
        assert cluster.settled()

    def test_restarted_old_leader_returns_as_standby(self):
        _bus, cluster = _cluster()
        self._run_leaderless(cluster, 6)
        cluster.step(6.25, frozenset())
        cluster.finish_epoch(6.75, frozenset())
        cluster.step(7.25, frozenset())
        replica0 = cluster.replicas[0]
        assert replica0.alive
        assert replica0.role == "standby"
        assert replica0.term == 1
        assert replica0.leader_name == "controller-1"
        assert cluster.acting_leader() is cluster.replicas[1]

    def test_replayed_promote_is_idempotent(self):
        bus, cluster = _cluster()
        self._run_leaderless(cluster, 5)
        replica1, replica2 = cluster.replicas[1], cluster.replicas[2]
        before = [(r.role, r.term, r.stats.elections) for r in cluster.replicas]
        # A duplicated / reordered promote re-delivers a known fact.
        payload = {"term": 1, "leader": "controller-1"}
        for target in ("controller-1", "controller-2"):
            bus.send(
                "controller-1", ha_address(target), KIND_PROMOTE, payload, 64, 5.0
            )
        replica1._dispatch(5.1)
        replica2._dispatch(5.1)
        assert [
            (r.role, r.term, r.stats.elections) for r in cluster.replicas
        ] == before
        leaders = [r for r in cluster.replicas if r.alive and r.role == "leader"]
        assert len(leaders) == 1

    def test_stale_promote_replay_is_ignored(self):
        bus, cluster = _cluster()
        self._run_leaderless(cluster, 5)
        replica2 = cluster.replicas[2]
        # A long-delayed promote from a lower term must not roll back.
        bus.send(
            "controller",
            ha_address("controller-2"),
            KIND_PROMOTE,
            {"term": 0, "leader": "controller"},
            64,
            5.0,
        )
        replica2._dispatch(5.1)
        assert replica2.term == 1
        assert replica2.leader_name == "controller-1"


class TestHandoffMerge:
    def test_merge_is_idempotent_under_duplication(self):
        _bus, cluster = _cluster()
        replica = cluster.replicas[2]
        entry = EpochLogEntry(
            term=1, version=4, reason="periodic", max_acked=3,
            manifests=(("a", manifest_to_dict(_manifest("a", "k", 0.0, 1.0))),),
        )
        replica._merge_entries([entry.to_dict()])
        replica._merge_entries([entry.to_dict()])
        assert replica.log[4] == entry
        assert replica.stats.handoff_entries == 1

    def test_reordered_stale_entry_cannot_overwrite_newer_term(self):
        _bus, cluster = _cluster()
        replica = cluster.replicas[2]
        newer = EpochLogEntry(
            term=4, version=4, reason="periodic", max_acked=3,
            manifests=(("a", manifest_to_dict(_manifest("a", "k", 0.0, 0.5))),),
        )
        stale = EpochLogEntry(
            term=1, version=4, reason="periodic", max_acked=3,
            manifests=(("a", manifest_to_dict(_manifest("a", "k", 0.5, 1.0))),),
        )
        replica._merge_entries([newer.to_dict()])
        replica._merge_entries([stale.to_dict()])  # arrives late
        assert replica.log[4] == newer

    def test_higher_term_content_wins_per_version(self):
        _bus, cluster = _cluster()
        replica = cluster.replicas[2]
        old = EpochLogEntry(
            term=1, version=4, reason="periodic", max_acked=3,
            manifests=(("a", manifest_to_dict(_manifest("a", "k", 0.5, 1.0))),),
        )
        new = EpochLogEntry(
            term=4, version=4, reason="failure", max_acked=3,
            manifests=(("a", manifest_to_dict(_manifest("a", "k", 0.0, 0.5))),),
        )
        replica._merge_entries([old.to_dict()])
        replica._merge_entries([new.to_dict()])
        assert replica.log[4] == new
        assert replica.stats.handoff_entries == 2


class TestAgentTermFencing:
    def _agent(self):
        bus = _quiet_bus()
        agent = Agent("n1", bus, config=AgentConfig(lease_ttl=2.5))
        return bus, agent

    def test_stale_term_message_is_nacked_not_applied(self):
        bus, agent = self._agent()
        bus.send(
            "controller-1", "n1", KIND_MANIFEST_UPDATE,
            _full_push(0, _manifest("n1", "k", 0.0, 1.0), term=2, lease=3.0),
            100, 0.0,
        )
        agent.step(0.0)
        assert agent.applied_version == 0
        assert agent.current_term == 2
        bus.send(
            "controller", "n1", KIND_MANIFEST_UPDATE,
            _full_push(1, _manifest("n1", "k", 0.0, 0.5), term=1, lease=9.0),
            100, 1.0,
        )
        agent.step(1.0)
        assert agent.applied_version == 0  # the stale push never landed
        assert agent.stats.stale_terms_rejected == 1
        nacks = [
            m for m in bus.deliver("controller", 2.0) if m.kind == KIND_NACK
        ]
        assert len(nacks) == 1
        assert nacks[0].payload["term"] == 2
        assert nacks[0].payload["stale_term"] == 1

    def test_stale_term_message_cannot_refresh_the_lease(self):
        bus, agent = self._agent()
        bus.send(
            "controller-1", "n1", KIND_MANIFEST_UPDATE,
            _full_push(0, _manifest("n1", "k", 0.0, 1.0), term=2, lease=3.0),
            100, 0.0,
        )
        agent.step(0.0)
        assert agent.lease_expires_at == 3.0
        # The deposed leader tries to keep the node leased far into the
        # future; the blanket lease handler must never see the message.
        bus.send(
            "controller", "n1", KIND_MANIFEST_UPDATE,
            _full_push(5, _manifest("n1", "k", 0.0, 0.5), term=1, lease=99.0),
            100, 1.0,
        )
        agent.step(1.0)
        assert agent.lease_expires_at == 3.0

    def test_announce_adopts_term_but_never_extends_the_lease(self):
        bus, agent = self._agent()
        bus.send(
            "controller-1", "n1", KIND_MANIFEST_UPDATE,
            _full_push(0, _manifest("n1", "k", 0.0, 1.0), term=1, lease=3.0),
            100, 0.0,
        )
        agent.step(0.0)
        bus.send(
            "controller-2", "n1", KIND_TERM_ANNOUNCE,
            {"term": 4, "leader": "controller-2", "version": 0, "lease": False},
            56, 1.0,
        )
        agent.step(1.0)
        assert agent.current_term == 4
        assert agent.leader == "controller-2"
        assert agent.lease_expires_at == 3.0  # announce proves, not leases

    def test_mutation_stale_delta_trips_epoch_regression(self, monkeypatch):
        """The acceptance-mandated mutation: disable the term fence so
        a stale-term push lands, and the chaos monitor must catch the
        applied (term, version) pair regressing."""
        monkeypatch.setattr(Agent, "_term_fencing", False)
        bus, agent = self._agent()
        monitor = InvariantMonitor(STANDARD_MODULES)
        bus.send(
            "controller", "n1", KIND_MANIFEST_UPDATE,
            _full_push(1, _manifest("n1", "k", 0.0, 1.0), term=1, lease=9.0),
            100, 0.0,
        )
        agent.step(0.0)
        bus.send(
            "controller-1", "n1", KIND_MANIFEST_UPDATE,
            _full_push(2, _manifest("n1", "k", 0.0, 0.5), term=2, lease=9.0),
            100, 1.0,
        )
        agent.step(1.0)
        monitor.epoch_regression(1, {"n1": agent})
        assert monitor.violations == []
        assert (agent.applied_term, agent.applied_version) == (2, 2)
        # The deposed term-1 leader pushes a *newer version number*.
        bus.send(
            "controller", "n1", KIND_MANIFEST_UPDATE,
            _full_push(3, _manifest("n1", "k", 0.5, 1.0), term=1, lease=9.0),
            100, 2.0,
        )
        agent.step(2.0)
        assert (agent.applied_term, agent.applied_version) == (1, 3)
        monitor.epoch_regression(2, {"n1": agent})
        [violation] = monitor.violations
        assert violation.rule == "epoch-regression"

    def test_fence_on_same_sequence_is_clean(self):
        """Control arm of the mutation test: with the fence on, the
        stale push is nacked and the monitor stays quiet."""
        bus, agent = self._agent()
        monitor = InvariantMonitor(STANDARD_MODULES)
        for src, version, term in (
            ("controller", 1, 1),
            ("controller-1", 2, 2),
            ("controller", 3, 1),
        ):
            bus.send(
                src, "n1", KIND_MANIFEST_UPDATE,
                _full_push(
                    version, _manifest("n1", "k", 0.0, 1.0), term=term, lease=9.0
                ),
                100, float(version),
            )
            agent.step(float(version))
            monitor.epoch_regression(version, {"n1": agent})
        assert monitor.violations == []
        assert (agent.applied_term, agent.applied_version) == (2, 2)
        assert agent.stats.stale_terms_rejected == 1


class TestLeaderUniquenessMutation:
    def test_unfenced_leader_ignores_depose_and_trips_the_monitor(
        self, monkeypatch
    ):
        monkeypatch.setattr(ControllerReplica, "_ha_fencing", False)
        bus, cluster = _cluster()
        monitor = InvariantMonitor(STANDARD_MODULES)
        replica0, replica1 = cluster.replicas[0], cluster.replicas[1]
        replica1._promote(1.0)
        bus.send(
            "controller-1", ha_address("controller"), KIND_TERM_ANNOUNCE,
            {"term": 1, "leader": "controller-1", "version": -1, "lease": False},
            56, 1.0,
        )
        replica0._dispatch(1.1)
        replica0._maybe_demote(1.1)
        assert replica0.role == "leader"  # mutation: refused to step down
        assert replica0.observed_term > replica0.term
        monitor.leader_uniqueness(1, cluster)
        assert any(
            v.rule == "leader-uniqueness" for v in monitor.violations
        )

    def test_fenced_leader_deposes_and_monitor_stays_quiet(self):
        bus, cluster = _cluster()
        monitor = InvariantMonitor(STANDARD_MODULES)
        replica0, replica1 = cluster.replicas[0], cluster.replicas[1]
        replica1._promote(1.0)
        bus.send(
            "controller-1", ha_address("controller"), KIND_TERM_ANNOUNCE,
            {"term": 1, "leader": "controller-1", "version": -1, "lease": False},
            56, 1.0,
        )
        replica0._dispatch(1.1)
        replica0._maybe_demote(1.1)
        assert replica0.role == "standby"
        assert replica0.stats.depositions == 1
        assert replica0.leader_name == "controller-1"
        monitor.leader_uniqueness(1, cluster)
        assert monitor.violations == []


class TestHandoffDispatch:
    def test_duplicated_handoff_messages_leave_log_identical(self):
        bus, cluster = _cluster()
        replica2 = cluster.replicas[2]
        entry = EpochLogEntry(
            term=1, version=2, reason="periodic", max_acked=1,
            manifests=(("a", manifest_to_dict(_manifest("a", "k", 0.0, 1.0))),),
        )
        payload = {
            "term": 1,
            "leader": "controller-1",
            "entries": [entry.to_dict()],
        }
        for send_at in (1.0, 1.0, 2.0):  # duplicated, then replayed
            bus.send(
                "controller-1", ha_address("controller-2"),
                KIND_STATE_HANDOFF, payload, 256, send_at,
            )
        replica2._dispatch(3.0)
        assert replica2.log == {2: entry}
        assert replica2.stats.handoff_entries == 1


@pytest.fixture(scope="module")
def ha_acceptance():
    """The acceptance matrix: both HA plans at the CI seeds."""
    results = {}
    for plan_name in ("leader-crash-mid-push", "leader-partition"):
        for seed in (3, 17, 42):
            plan = build_plan(
                plan_name, seed, 18, by_label("Internet2").node_names
            )
            results[(plan_name, seed)] = run_chaos(
                ChaosConfig(plan=plan, epochs=18, base_sessions=400, seed=seed)
            )
    return results


class TestHAPlanAcceptance:
    def test_no_invariant_violations_at_any_seed(self, ha_acceptance):
        for key, result in sorted(ha_acceptance.items()):
            assert result.check_acceptance() == [], key
            assert result.ok

    def test_exactly_one_failover_per_run(self, ha_acceptance):
        for key, result in sorted(ha_acceptance.items()):
            summary = result.ha_summary
            assert summary is not None, key
            assert summary["elections"] == 1, key
            assert summary["leader"] == "controller-1", key
            assert summary["settled"], key

    def test_partition_plan_deposes_the_old_leader(self, ha_acceptance):
        for seed in (3, 17, 42):
            summary = ha_acceptance[("leader-partition", seed)].ha_summary
            assert summary["depositions"] == 1

    def test_reconverges_within_budget(self, ha_acceptance):
        for key, result in sorted(ha_acceptance.items()):
            heal = int(result.config.plan.heal_time + 0.999)
            assert result.reconverged_epoch is not None, key
            assert (
                result.reconverged_epoch
                <= heal + result.config.reconverge_epochs
            ), key

    def test_epoch_records_carry_leadership(self, ha_acceptance):
        result = ha_acceptance[("leader-crash-mid-push", 3)]
        leaders = {r.leader for r in result.records}
        assert "controller-1" in leaders  # post-takeover
        assert max(r.term for r in result.records) == 1
        # Leaderless outage epochs report no leader.
        assert any(r.leader is None for r in result.records)

    def test_named_plans_force_their_replica_floor(self, ha_acceptance):
        assert HA_PLAN_REPLICAS["leader-crash-mid-push"] == 3
        result = ha_acceptance[("leader-crash-mid-push", 3)]
        assert result.config.replicas == 1  # config said 1...
        assert len(result.ha_summary["replicas"]) == 3  # ...the plan won

    def test_result_round_trips_with_ha_fields(self, ha_acceptance):
        result = ha_acceptance[("leader-partition", 3)]
        rebuilt = ChaosResult.from_dict(result.to_dict())
        assert rebuilt.ha_summary == result.ha_summary
        assert len(rebuilt.records) == len(result.records)
        for mine, theirs in zip(result.records, rebuilt.records):
            assert (mine.leader, mine.term, mine.ha_settled) == (
                theirs.leader, theirs.term, theirs.ha_settled,
            )
        assert pickle.loads(pickle.dumps(result)).ha_summary == result.ha_summary

    def test_integration_mutation_trips_the_monitor(self):
        """End-to-end mutation: both fences off, the partitioned
        ex-leader keeps serving and its stale-term deltas land — the
        monitor must convict on both failover invariants."""
        plan = build_plan(
            "leader-partition", 3, 18, by_label("Internet2").node_names
        )
        config = ChaosConfig(plan=plan, epochs=18, base_sessions=400, seed=3)
        try:
            Agent._term_fencing = False
            ControllerReplica._ha_fencing = False
            result = run_chaos(config)
        finally:
            Agent._term_fencing = True
            ControllerReplica._ha_fencing = True
        rules = {violation.rule for violation in result.violations}
        assert "leader-uniqueness" in rules
        assert "epoch-regression" in rules


class TestChaosEpochRecordHAFields:
    def test_round_trip(self):
        record = ChaosEpochRecord(
            record=EpochRecord(epoch=3, time=3.0),
            degraded_nodes=("a",),
            controller_down=True,
            leader="controller-1",
            term=4,
            ha_settled=False,
        )
        rebuilt = ChaosEpochRecord.from_dict(record.to_dict())
        assert rebuilt.leader == "controller-1"
        assert rebuilt.term == 4
        assert rebuilt.ha_settled is False

    def test_from_dict_defaults_for_pre_ha_artifacts(self):
        record = ChaosEpochRecord(record=EpochRecord(epoch=0, time=0.0))
        data = record.to_dict()
        for key in ("leader", "term", "ha_settled"):
            del data[key]
        rebuilt = ChaosEpochRecord.from_dict(data)
        assert rebuilt.leader is None
        assert rebuilt.term == 0
        assert rebuilt.ha_settled is True


class TestHAMetrics:
    def test_failover_families_recorded(self):
        registry = MetricsRegistry()
        plan = build_plan(
            "leader-crash-mid-push", 3, 18, by_label("Internet2").node_names
        )
        result = run_chaos(
            ChaosConfig(plan=plan, epochs=18, base_sessions=400, seed=3),
            registry=registry,
        )
        assert result.ok
        elections = registry.get("controller_ha_elections_total")
        assert elections.value(replica="controller-1") == 1
        handoffs = registry.get("controller_ha_handoffs_total")
        assert handoffs.value(outcome="caught-up") >= 1
        term = registry.get("controller_ha_term")
        assert term.value() == 1
        # Pre-declared at zero even though nothing was deposed.
        depositions = registry.get("controller_ha_depositions_total")
        assert depositions.value(replica="controller") == 0
