"""Tests for the NetFlow-style measurement substrate."""

import pytest

from repro.core.manifest import generate_manifests, verify_manifests
from repro.core.nids_lp import solve_nids_lp
from repro.core.units import build_units
from repro.measurement import (
    EstimationModel,
    FlowExporter,
    estimate_units,
)
from repro.nids.modules import HTTP, STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=151))
    sessions = generator.generate(6000)
    return topo, paths, sessions


class TestFlowExporter:
    def test_unsampled_export_complete(self, world):
        _, _, sessions = world
        records = FlowExporter().export(sessions)
        assert len(records) == len(sessions)
        assert sum(r.packets for r in records) == sum(
            s.num_packets for s in sessions
        )

    def test_sampled_export_thins(self, world):
        _, _, sessions = world
        records = FlowExporter(sampling_rate=0.1, seed=1).export(sessions)
        assert 0.05 * len(sessions) < len(records) < 0.15 * len(sessions)

    def test_invalid_sampling_rate(self):
        with pytest.raises(ValueError):
            FlowExporter(sampling_rate=0.0)
        with pytest.raises(ValueError):
            FlowExporter(sampling_rate=1.5)

    def test_report_totals_match_truth_unsampled(self, world):
        _, _, sessions = world
        report = FlowExporter().measure(sessions)
        assert report.total_flows == pytest.approx(len(sessions))
        assert report.total_packets == pytest.approx(
            sum(s.num_packets for s in sessions)
        )

    def test_sampling_inversion_unbiased(self, world):
        """1-in-10 sampling with inversion recovers totals within
        sampling noise."""
        _, _, sessions = world
        report = FlowExporter(sampling_rate=0.1, seed=3).measure(sessions)
        assert report.total_flows == pytest.approx(len(sessions), rel=0.15)

    def test_port_share(self, world):
        _, _, sessions = world
        report = FlowExporter().measure(sessions)
        pair = max(report.pair_flows, key=report.pair_flows.get)
        http_share = report.port_share(pair, 80)
        assert 0.0 < http_share < 1.0


class TestEstimateUnits:
    def test_estimated_volumes_close_to_truth(self, world):
        _, paths, sessions = world
        report = FlowExporter().measure(sessions)
        estimated = {u.ident: u for u in estimate_units(STANDARD_MODULES, report, paths)}
        truth = {u.ident: u for u in build_units(STANDARD_MODULES, sessions, paths)}

        # HTTP units are port-identified: flow counts must be exact.
        http_truth = [u for ident, u in truth.items() if ident[0] == "http"]
        for unit in http_truth:
            est = estimated.get(unit.ident)
            assert est is not None
            assert est.items == pytest.approx(unit.items, rel=1e-9)
            assert est.pkts == pytest.approx(unit.pkts, rel=1e-6)

    def test_eligible_sets_match_truth(self, world):
        _, paths, sessions = world
        report = FlowExporter().measure(sessions)
        estimated = {u.ident: u for u in estimate_units(STANDARD_MODULES, report, paths)}
        truth = {u.ident: u for u in build_units(STANDARD_MODULES, sessions, paths)}
        for ident, unit in truth.items():
            if ident in estimated:
                assert estimated[ident].eligible == unit.eligible

    def test_planning_from_report_close_to_truth(self, world):
        """The operational question: does planning from NetFlow give a
        deployment as balanced as planning from ground truth?"""
        topo, paths, sessions = world
        report = FlowExporter().measure(sessions)
        estimated = estimate_units(STANDARD_MODULES, report, paths)
        truth = build_units(STANDARD_MODULES, sessions, paths)
        objective_est = solve_nids_lp(estimated, topo).objective
        objective_true = solve_nids_lp(truth, topo).objective
        assert objective_est == pytest.approx(objective_true, rel=0.35)

    def test_planning_from_sampled_report_still_works(self, world):
        topo, paths, sessions = world
        report = FlowExporter(sampling_rate=0.1, seed=5).measure(sessions)
        estimated = estimate_units(STANDARD_MODULES, report, paths)
        assignment = solve_nids_lp(estimated, topo)
        manifests = generate_manifests(estimated, assignment, topo.node_names)
        verify_manifests(estimated, manifests)

    def test_estimation_model_ratios_applied(self, world):
        _, paths, sessions = world
        report = FlowExporter().measure(sessions)
        low = estimate_units(
            STANDARD_MODULES, report, paths, EstimationModel(distinct_source_ratio=0.1)
        )
        high = estimate_units(
            STANDARD_MODULES, report, paths, EstimationModel(distinct_source_ratio=0.5)
        )
        low_scan = sum(u.items for u in low if u.class_name == "scan")
        high_scan = sum(u.items for u in high if u.class_name == "scan")
        assert high_scan == pytest.approx(5.0 * low_scan, rel=1e-6)
