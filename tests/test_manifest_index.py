"""Property tests for the precompiled ManifestIndex.

The central invariant (satellite of the batch-dispatch work): for any
LP-style fraction vector laid out by ``generate_manifests``, every
probe in ``[0, 1)`` — including adversarial probes at and just below
every range boundary and the maximum value ``hash_unit`` can produce —
is claimed by exactly ``fold`` nodes, whether membership is answered by
the scalar ``NodeManifest.contains`` scan or the searchsorted
``ManifestIndex``.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.manifest import NodeManifest, generate_manifests, verify_manifests
from repro.core.manifest_index import ManifestIndex, compile_ranges, index_manifests
from repro.core.nids_lp import NIDSAssignment
from repro.core.units import CoordinationUnit
from repro.hashing.ranges import EPSILON, HashRange

#: The largest value hash_unit() can return: (2**32 - 1) / 2**32.
MAX_HASH_UNIT = 1.0 - 2.0**-32


def _layout(fractions, fold):
    """Build one coordination unit + manifests from raw fractions.

    Callers must ensure no normalized share exceeds 1.0 (a node's arc
    may not lap itself) — property tests guard this with ``assume``.
    """
    total = sum(fractions)
    normalized = [f / total * fold for f in fractions]
    assert all(f <= 1.0 for f in normalized)
    nodes = [f"n{i}" for i in range(len(normalized))]
    unit = CoordinationUnit(
        class_name="c",
        key=("k",),
        eligible=tuple(nodes),
        pkts=1.0,
        items=1.0,
        cpu_work=1.0,
        mem_bytes=1.0,
    )
    assignment = NIDSAssignment(
        fractions={("c", ("k",), n): f for n, f in zip(nodes, normalized)},
        cpu_load={},
        mem_load={},
        objective=0.0,
        coverage={("c", ("k",)): float(fold)},
        solve_seconds=0.0,
    )
    manifests = generate_manifests([unit], assignment, nodes)
    verify_manifests([unit], manifests)
    return unit, manifests


def _probes(manifests):
    """Adversarial probe set: boundaries, just-below boundaries, extremes."""
    probes = {0.0, 0.5, MAX_HASH_UNIT}
    for manifest in manifests.values():
        for ranges in manifest.entries.values():
            for r in ranges:
                for boundary in (r.lo, r.hi):
                    probes.add(boundary)
                    probes.add(np.nextafter(boundary, 0.0))
    return sorted(p for p in probes if 0.0 <= p < 1.0)


@given(
    fractions=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=8
    ),
    fold=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=150, deadline=None)
def test_property_every_probe_claimed_exactly_fold_times(fractions, fold):
    assume(len(fractions) > fold)
    total = sum(fractions)
    assume(all(f / total * fold <= 1.0 for f in fractions))
    unit, manifests = _layout(fractions, fold)
    # Keep internal boundaries clear of the closed-top band so the
    # expected depth is unambiguous (the generator never creates such
    # boundaries for real LP outputs either — they are snapped to 1.0).
    for manifest in manifests.values():
        for ranges in manifest.entries.values():
            for r in ranges:
                assume(r.hi == 1.0 or r.hi <= 1.0 - 1e-6)
    indexes = index_manifests(manifests)
    probes = _probes(manifests)
    values = np.array(probes)
    batch_depth = np.zeros(len(probes), dtype=np.int64)
    for node in unit.eligible:
        scalar_mask = [
            manifests[node].contains("c", ("k",), p) for p in probes
        ]
        index_scalar_mask = [indexes[node].contains("c", ("k",), p) for p in probes]
        assert scalar_mask == index_scalar_mask
        batch_mask = indexes[node].contains_batch("c", ("k",), values)
        assert batch_mask.tolist() == scalar_mask
        batch_depth += batch_mask
    assert (batch_depth == fold).all(), (
        probes,
        batch_depth.tolist(),
    )


@given(
    bounds=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=12
    ),
    probe=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=300, deadline=None)
def test_property_compile_matches_linear_scan(bounds, probe):
    """compile_ranges membership == any(r.contains(probe)) for arbitrary
    (even overlapping or empty) range sets."""
    bounds = sorted(bounds)
    ranges = [
        HashRange(lo, hi) for lo, hi in zip(bounds[::2], bounds[1::2])
    ]
    compiled = compile_ranges(ranges)
    expected = any(r.contains(probe) for r in ranges)
    got = bool(np.searchsorted(compiled, probe, side="right") & 1)
    assert got == expected


class TestManifestIndex:
    def test_full_manifest_contains_everything(self):
        index = ManifestIndex(NodeManifest(node="standalone", full=True))
        assert index.contains("http", ("x",), 0.25)
        assert index.contains_batch("http", ("x",), np.array([0.0, 0.99])).all()

    def test_unknown_unit_contains_nothing(self):
        index = ManifestIndex(NodeManifest(node="a"))
        assert not index.contains("http", ("x",), 0.25)
        assert not index.contains_batch("http", ("x",), np.array([0.1, 0.9])).any()

    def test_closed_top_range_claims_up_to_one(self):
        manifest = NodeManifest(node="a")
        manifest.entries[("c", ("k",))] = (HashRange(0.5, 1.0 - 5e-10),)
        index = ManifestIndex(manifest)
        for probe in (0.5, 0.999, 1.0 - 1e-12, 1.0, MAX_HASH_UNIT):
            assert index.contains("c", ("k",), probe)
            assert manifest.contains("c", ("k",), probe)
        assert not index.contains("c", ("k",), 0.499)

    def test_touching_ranges_merge_without_gap(self):
        manifest = NodeManifest(node="a")
        manifest.entries[("c", ("k",))] = (
            HashRange(0.0, 0.25),
            HashRange(0.25, 0.5),
        )
        index = ManifestIndex(manifest)
        assert index.contains("c", ("k",), 0.25)
        assert not index.contains("c", ("k",), 0.5)

    def test_empty_ranges_claim_nothing(self):
        manifest = NodeManifest(node="a")
        manifest.entries[("c", ("k",))] = (HashRange(0.3, 0.3),)
        index = ManifestIndex(manifest)
        assert not index.contains("c", ("k",), 0.3)


def test_generated_manifests_snap_top_to_exactly_one():
    """Satellite bugfix: the last laid range of each unit reaches 1.0
    exactly even when the fractions carry solver epsilon."""
    unit, manifests = _layout([0.25, 0.25, 0.25, 0.25 - 3e-10], 1)
    top = max(
        r.hi
        for manifest in manifests.values()
        for ranges in manifest.entries.values()
        for r in ranges
    )
    assert top == 1.0
