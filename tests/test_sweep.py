"""Tests for the repro.sweep subsystem.

The load-bearing guarantees:

* parallel (4-worker) and sequential (1-worker) executions of the
  same grid produce **byte-identical** consolidated reports;
* the artifact cache serves unchanged cells without re-execution
  (verified through ``sweep_cache_hits_total``) and treats changed
  specs, corrupt artifacts, and format bumps as misses;
* cell seeds derive stably from the axis coordinates;
* run results round-trip through JSON and pickle (the worker/cache
  transport).
"""

import json
import pickle

import pytest

import repro.sweep.cache as sweep_cache
from repro.cli import main as repro_main
from repro.control.chaos import ChaosConfig, build_plan, run_chaos
from repro.control.scenarios import ScenarioConfig, run_scenario
from repro.obs import MetricsRegistry
from repro.sweep import (
    ArtifactCache,
    CellResult,
    SweepCell,
    SweepSpec,
    cache_key,
    consolidate,
    derive_seed,
    load_spec,
    render_report,
    run_sweep,
)
from repro.topology import by_label

#: The mini-grid for executor tests: 2 plans x 2 dynamics x 2 seeds on
#: internet2 — all eight cells are known-green at these settings.
GRID = SweepSpec(
    name="grid",
    topologies=("internet2",),
    plans=("none", "controller-outage"),
    dynamics=("steady", "diurnal"),
    redundancy=(1.0,),
    seeds=(0, 1),
    epochs=16,
    base_sessions=120,
)


class TestDeriveSeed:
    def test_deterministic_and_32bit(self):
        a = derive_seed(0, "internet2", "none", "steady", 1.0, 0)
        b = derive_seed(0, "internet2", "none", "steady", 1.0, 0)
        assert a == b
        assert 0 <= a < 2**32

    def test_every_axis_perturbs_the_seed(self):
        base = derive_seed(0, "internet2", "none", "steady", 1.0, 0)
        assert derive_seed(1, "internet2", "none", "steady", 1.0, 0) != base
        assert derive_seed(0, "geant", "none", "steady", 1.0, 0) != base
        assert derive_seed(0, "internet2", "random", "steady", 1.0, 0) != base
        assert derive_seed(0, "internet2", "none", "bursty", 1.0, 0) != base
        assert derive_seed(0, "internet2", "none", "steady", 2.0, 0) != base
        assert derive_seed(0, "internet2", "none", "steady", 1.0, 7) != base

    def test_cell_property_matches_free_function(self):
        cell = SweepCell(topology="Internet2", seed=3, base_seed=5)
        assert cell.derived_seed == derive_seed(
            5, "internet2", "none", "diurnal", 1.0, 3
        )


class TestSweepCell:
    def test_cell_id_is_stable_and_readable(self):
        cell = SweepCell(
            topology="geant", plan="random", dynamics="bursty",
            redundancy=2.0, seed=4,
        )
        assert cell.cell_id == "geant+random+bursty+r2+s4"

    def test_round_trip(self):
        cell = SweepCell(plan="lossy-burst", epochs=20, base_seed=9)
        assert SweepCell.from_dict(
            json.loads(json.dumps(cell.to_dict()))
        ) == cell

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="plan"):
            SweepCell(plan="meteor-strike")

    def test_unknown_dynamics_rejected(self):
        with pytest.raises(ValueError, match="dynamics"):
            SweepCell(dynamics="tsunami")

    def test_sub_unit_redundancy_rejected(self):
        with pytest.raises(ValueError, match="redundancy"):
            SweepCell(redundancy=0.5)

    def test_named_plan_needs_fourteen_epochs(self):
        with pytest.raises(ValueError, match="epochs"):
            SweepCell(plan="controller-outage", epochs=10)


class TestSweepSpec:
    def test_cells_enumerate_in_odometer_order(self):
        spec = SweepSpec(
            topologies=("internet2", "geant"),
            seeds=(0, 1),
            plans=("none",),
        )
        ids = [cell.cell_id for cell in spec.cells()]
        assert ids == [
            "internet2+none+diurnal+r1+s0",
            "internet2+none+diurnal+r1+s1",
            "geant+none+diurnal+r1+s0",
            "geant+none+diurnal+r1+s1",
        ]
        assert len(spec) == 4

    def test_cells_inherit_run_shape_and_base_seed(self):
        spec = SweepSpec(epochs=20, base_sessions=77, seed=13)
        (cell,) = spec.cells()
        assert cell.epochs == 20
        assert cell.base_sessions == 77
        assert cell.base_seed == 13

    def test_round_trip(self):
        spec = SweepSpec(
            name="rt", plans=("none", "random"), redundancy=(1.0, 1.5),
            epochs=18,
        )
        assert SweepSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(seeds=())

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(seeds=(1, 1))

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_dict({"name": "x", "topography": ["internet2"]})


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(
            {"name": "j", "seeds": [0, 2], "epochs": 18}
        ))
        spec = load_spec(str(path))
        assert spec.name == "j"
        assert spec.seeds == (0, 2)
        assert spec.epochs == 18

    def test_toml_file_with_sweep_table(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "sweep.toml"
        path.write_text(
            '[sweep]\nname = "t"\nplans = ["none", "random"]\nepochs = 18\n'
        )
        spec = load_spec(str(path))
        assert spec.name == "t"
        assert spec.plans == ("none", "random")

    def test_repo_example_specs_load(self):
        spec = load_spec("sweeps/smoke.json")
        assert len(spec) == 8
        pytest.importorskip("tomllib")
        nightly = load_spec("sweeps/nightly.toml")
        assert len(nightly) > 8


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cell = SweepCell()
        assert cache.get(cell) is None
        cache.put(cell, {"ok": True})
        assert cache.get(cell) == {"ok": True}

    def test_changed_spec_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cache.put(SweepCell(epochs=16), {"ok": True})
        assert cache.get(SweepCell(epochs=17)) is None
        assert cache_key(SweepCell(epochs=16)) != cache_key(
            SweepCell(epochs=17)
        )

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cell = SweepCell()
        cache.put(cell, {"ok": True})
        path = cache._path(cache_key(cell))
        with open(path, "w") as handle:
            handle.write("{truncated")
        assert cache.get(cell) is None

    def test_format_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = ArtifactCache(str(tmp_path))
        cell = SweepCell()
        cache.put(cell, {"ok": True})
        monkeypatch.setattr(
            sweep_cache,
            "CACHE_FORMAT_VERSION",
            sweep_cache.CACHE_FORMAT_VERSION + 1,
        )
        assert cache.get(cell) is None

    def test_partition_splits_by_cache_state(self, tmp_path):
        cache = ArtifactCache(str(tmp_path))
        cached_cell = SweepCell(seed=0)
        missing_cell = SweepCell(seed=1)
        cache.put(cached_cell, {"ok": True})
        hits, missing = cache.partition([cached_cell, missing_cell])
        assert set(hits) == {cached_cell.cell_id}
        assert missing == [missing_cell]


class TestResultSerialization:
    """Results cross the worker/cache boundary: JSON and pickle safe."""

    def test_scenario_result_round_trips(self):
        result = run_scenario(
            ScenarioConfig(epochs=6, base_sessions=80, seed=3)
        )
        as_dict = result.to_dict()
        rebuilt = type(result).from_dict(json.loads(json.dumps(as_dict)))
        assert rebuilt.to_dict() == as_dict
        assert pickle.loads(pickle.dumps(result)).to_dict() == as_dict

    def test_chaos_result_round_trips(self):
        nodes = by_label("internet2").node_names
        config = ChaosConfig(
            plan=build_plan("controller-outage", 3, 14, nodes),
            epochs=14,
            base_sessions=80,
            seed=3,
        )
        result = run_chaos(config)
        as_dict = result.to_dict()
        rebuilt = type(result).from_dict(json.loads(json.dumps(as_dict)))
        assert rebuilt.to_dict() == as_dict
        assert pickle.loads(pickle.dumps(result)).to_dict() == as_dict

    def test_cell_result_round_trips(self, sequential_run):
        result = sequential_run.results[0]
        as_dict = result.to_dict()
        assert CellResult.from_dict(
            json.loads(json.dumps(as_dict))
        ).to_dict() == as_dict


@pytest.fixture(scope="module")
def sequential_run(tmp_path_factory):
    """The mini-grid executed once, sequentially, into a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("seq-cache")
    return run_sweep(GRID, jobs=1, cache_dir=str(cache_dir))


@pytest.fixture(scope="module")
def parallel_run(tmp_path_factory):
    """The mini-grid executed once across four worker processes."""
    cache_dir = tmp_path_factory.mktemp("par-cache")
    return run_sweep(GRID, jobs=4, cache_dir=str(cache_dir))


class TestExecutor:
    def test_grid_is_green(self, sequential_run):
        assert sequential_run.ok, sequential_run.violations
        assert len(sequential_run.results) == len(GRID)
        assert len(sequential_run.executed) == len(GRID)
        assert sequential_run.cached == ()

    def test_parallel_report_is_byte_identical(
        self, sequential_run, parallel_run
    ):
        sequential = render_report(consolidate(sequential_run))
        parallel = render_report(consolidate(parallel_run))
        assert sequential == parallel

    def test_warm_rerun_serves_everything_from_cache(
        self, sequential_run, tmp_path_factory
    ):
        cache_dir = tmp_path_factory.mktemp("warm-cache")
        registry = MetricsRegistry()
        cold = run_sweep(GRID, jobs=1, cache_dir=str(cache_dir))
        warm = run_sweep(
            GRID, jobs=1, cache_dir=str(cache_dir), registry=registry
        )
        assert warm.executed == ()
        assert len(warm.cached) == len(GRID)
        assert registry.get("sweep_cache_hits_total").total() == len(GRID)
        assert registry.get("sweep_cache_misses_total").total() == 0
        assert render_report(consolidate(warm)) == render_report(
            consolidate(cold)
        )

    def test_grown_grid_only_executes_new_cells(
        self, tmp_path, sequential_run
    ):
        small = SweepSpec(
            name="grow", plans=("none",), dynamics=("steady",),
            seeds=(0,), epochs=16, base_sessions=120,
        )
        grown = SweepSpec(
            name="grow", plans=("none",), dynamics=("steady",),
            seeds=(0, 1), epochs=16, base_sessions=120,
        )
        first = run_sweep(small, jobs=1, cache_dir=str(tmp_path))
        assert len(first.executed) == 1
        second = run_sweep(grown, jobs=1, cache_dir=str(tmp_path))
        assert len(second.executed) == 1
        assert second.executed[0].endswith("+s1")
        assert len(second.cached) == 1

    def test_force_re_executes_despite_cache(self, tmp_path):
        spec = SweepSpec(
            name="force", plans=("none",), dynamics=("steady",),
            seeds=(0,), epochs=16, base_sessions=120,
        )
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        forced = run_sweep(
            spec, jobs=1, cache_dir=str(tmp_path), force=True
        )
        assert len(forced.executed) == 1
        assert forced.cached == ()

    def test_merged_metrics_cover_cell_telemetry(self, tmp_path):
        spec = SweepSpec(
            name="telemetry", plans=("none",), dynamics=("steady",),
            seeds=(0,), epochs=16, base_sessions=120,
        )
        registry = MetricsRegistry()
        run_sweep(spec, jobs=1, cache_dir=str(tmp_path), registry=registry)
        names = set(registry.snapshot()["metrics"])
        assert "sweep_cells_total" in names
        assert "sweep_workers" in names
        # Folded in from the cell's own registry snapshot:
        assert "controller_resolves_total" in names


class TestReport:
    def test_report_shape(self, sequential_run):
        report = consolidate(sequential_run)
        assert report["summary"]["cells"] == len(GRID)
        assert report["summary"]["ok"] == len(GRID)
        assert report["summary"]["violations_total"] == 0
        assert len(report["cells"]) == len(GRID)
        assert len(report["worst_cells"]) == 3
        assert set(report["axes"]) == {
            "topology", "plan", "dynamics", "redundancy", "seed",
        }
        assert report["axes"]["plan"]["none"]["cells"] == 4
        assert report["axes"]["plan"]["controller-outage"]["ok"] == 4

    def test_report_excludes_wall_clock_values(self, sequential_run):
        report = consolidate(sequential_run)
        text = render_report(report)
        assert "duration_seconds" not in text
        for name in report["metrics"]["metrics"]:
            assert not name.endswith("_seconds")
            assert not name.endswith("_per_second")
            assert not name.startswith("sweep_")

    def test_violations_listed_per_cell(self, tmp_path):
        # geant under controller-outage is a known coverage-floor
        # stress case — use it to exercise the violation summary.
        spec = SweepSpec(
            name="stress", topologies=("geant",),
            plans=("controller-outage",), dynamics=("steady",),
            seeds=(0,), epochs=16, base_sessions=120,
        )
        run = run_sweep(spec, jobs=1, cache_dir=str(tmp_path))
        assert not run.ok
        report = consolidate(run)
        assert report["summary"]["violating_cells"] == 1
        assert report["violations"]
        assert report["violations"][0]["cell_id"].startswith("geant+")


class TestSweepCli:
    CELL_FLAGS = [
        "--plans", "none", "--dynamics", "steady", "--seeds", "0",
        "--epochs", "16", "--sessions", "120",
    ]

    def test_run_status_report_flow(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        report_path = str(tmp_path / "report.json")
        code = repro_main(
            ["sweep", "run", "--jobs", "1", "--cache-dir", cache_dir,
             "--report", report_path, *self.CELL_FLAGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ok: 1/1" in out
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["summary"]["cells"] == 1

        code = repro_main(
            ["sweep", "status", "--cache-dir", cache_dir, *self.CELL_FLAGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 cached, 0 to run" in out

        code = repro_main(
            ["sweep", "report", "--cache-dir", cache_dir, *self.CELL_FLAGS]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert json.loads(out)["summary"]["ok"] == 1

    def test_report_requires_complete_cache(self, tmp_path, capsys):
        code = repro_main(
            ["sweep", "report", "--cache-dir", str(tmp_path / "empty"),
             *self.CELL_FLAGS]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "not cached" in captured.err

    def test_run_loads_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "fromfile", "plans": ["none"], "dynamics": ["steady"],
            "seeds": [0], "epochs": 16, "base_sessions": 120,
        }))
        code = repro_main(
            ["sweep", "run", "--jobs", "1", "--no-cache",
             "--spec", str(spec_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sweep fromfile: 1 cells" in out

    def test_metrics_out_snapshot(self, tmp_path, capsys):
        metrics_path = str(tmp_path / "metrics.json")
        code = repro_main(
            ["sweep", "run", "--jobs", "1", "--no-cache",
             "--metrics-out", metrics_path, *self.CELL_FLAGS]
        )
        capsys.readouterr()
        assert code == 0
        with open(metrics_path) as handle:
            snapshot = json.load(handle)
        assert "sweep_cells_total" in snapshot["metrics"]
