"""Vectorized engine fast path: bit-identical to the scalar cost model.

The batch engine (``EmulationConfig(batch_engine=True)`` /
``BroInstance.process_sessions_batch``) is an optimization with an
exactness contract: every test here asserts *exact* report equality
with the scalar per-session loop — same tracking levels, same
coordination-check charges, bit-identical CPU floats (both paths fold
identical per-session subtotals into an exact accumulator), identical
item counts and alerts.
"""

import dataclasses

import pytest

from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
from repro.core.manifest import full_manifest
from repro.core.nids_deployment import plan_deployment
from repro.nids.engine import BroInstance, BroMode, EmulationConfig
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, SessionBatch, TrafficGenerator

SCALAR = EmulationConfig(batch_engine=False, batch_dispatch=False)
BATCH = EmulationConfig(batch_engine=True)


@pytest.fixture(scope="module")
def network():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=23))
    sessions = generator.generate(4000)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    traces = generator.split_by_node(sessions, transit=True)
    return topo, traces, sessions, deployment


def _standalone(topo, mode, config):
    dispatcher = None
    if mode is not BroMode.UNMODIFIED:
        dispatcher = CoordinatedDispatcher(
            node="standalone",
            manifest=full_manifest("standalone"),
            modules=STANDARD_MODULES,
            resolver=UnitResolver(topo.node_names),
        )
    return BroInstance(
        node="standalone",
        modules=STANDARD_MODULES,
        mode=mode,
        dispatcher=dispatcher,
        config=config,
    )


class TestBitIdentity:
    def test_bit_identical_at_100k_sessions(self):
        """The headline parity guarantee: scalar and batch reports are
        *equal* (not approximately equal) at 100k+ sessions, where any
        summation-order drift would have accumulated."""
        topo = internet2()
        generator = TrafficGenerator(
            topo, PathSet(topo), config=GeneratorConfig(seed=97)
        )
        sessions = generator.generate(100_000)
        scalar = _standalone(topo, BroMode.COORD_EVENT, SCALAR)
        batch = _standalone(topo, BroMode.COORD_EVENT, BATCH)
        scalar_report = scalar.process_sessions(sessions)
        batch_report = batch.process_sessions_batch(sessions)
        assert scalar_report == batch_report
        # Explicitly: the floats are bit-identical, not approx-equal.
        assert scalar_report.cpu.hex() == batch_report.cpu.hex()
        assert scalar_report.mem_bytes.hex() == batch_report.mem_bytes.hex()
        for name, cpu in scalar_report.module_cpu.items():
            assert cpu.hex() == batch_report.module_cpu[name].hex()

    @pytest.mark.parametrize(
        "mode", [BroMode.UNMODIFIED, BroMode.COORD_POLICY, BroMode.COORD_EVENT]
    )
    @pytest.mark.parametrize("fine_grained", [False, True])
    def test_all_modes_and_tracking_levels(self, network, mode, fine_grained):
        """Every Fig. 4 variant, with and without §2.5 fine-grained
        tracking (which exercises NONE/LIGHT/FULL levels)."""
        topo, traces, _, deployment = network
        scalar_cfg = dataclasses.replace(SCALAR, fine_grained=fine_grained)
        batch_cfg = dataclasses.replace(BATCH, fine_grained=fine_grained)
        for node in topo.node_names[:3]:
            dispatcher = (
                None if mode is BroMode.UNMODIFIED else deployment.dispatcher(node)
            )
            trace = traces[node]
            scalar = BroInstance(
                node, STANDARD_MODULES, mode, dispatcher, config=scalar_cfg
            ).process_sessions(trace)
            batch = BroInstance(
                node, STANDARD_MODULES, mode, dispatcher, config=batch_cfg
            ).process_sessions_batch(trace)
            assert scalar == batch

    def test_detectors_equivalent(self, network):
        """Behavioural detectors see the same sessions in the same
        order on both paths, so alerts match exactly."""
        topo, traces, _, deployment = network
        node = topo.node_names[1]
        scalar_cfg = dataclasses.replace(SCALAR, run_detectors=True)
        batch_cfg = dataclasses.replace(BATCH, run_detectors=True)
        trace = traces[node]
        scalar = BroInstance(
            node, STANDARD_MODULES, BroMode.COORD_EVENT,
            deployment.dispatcher(node), config=scalar_cfg,
        ).process_sessions(trace)
        batch = BroInstance(
            node, STANDARD_MODULES, BroMode.COORD_EVENT,
            deployment.dispatcher(node), config=batch_cfg,
        ).process_sessions_batch(trace)
        assert scalar.alerts == batch.alerts
        assert scalar == batch


class TestRouting:
    def test_default_config_routes_through_batch(self, network):
        """``process_sessions`` under the default config must equal the
        forced-scalar run (the fast path is transparent)."""
        topo, _, sessions, _ = network
        default = _standalone(topo, BroMode.COORD_EVENT, EmulationConfig())
        scalar = _standalone(topo, BroMode.COORD_EVENT, SCALAR)
        assert default.process_sessions(sessions[:2000]) == scalar.process_sessions(
            sessions[:2000]
        )

    def test_single_session_and_empty_trace(self, network):
        topo, _, sessions, _ = network
        for trace in ([], sessions[:1]):
            batch = _standalone(topo, BroMode.COORD_EVENT, BATCH)
            scalar = _standalone(topo, BroMode.COORD_EVENT, SCALAR)
            assert batch.process_sessions(trace) == scalar.process_sessions(trace)
            explicit = _standalone(topo, BroMode.COORD_EVENT, BATCH)
            assert explicit.process_sessions_batch(trace) == scalar.process_sessions(
                trace
            )

    def test_prebuilt_session_batch_accepted(self, network):
        """A SessionBatch built by the caller is used as-is."""
        topo, _, sessions, _ = network
        trace = sessions[:1500]
        from_list = _standalone(topo, BroMode.COORD_EVENT, BATCH).process_sessions(
            trace
        )
        from_batch = _standalone(topo, BroMode.COORD_EVENT, BATCH).process_sessions(
            SessionBatch(trace)
        )
        assert from_list == from_batch
