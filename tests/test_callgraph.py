"""Tests for the whole-package call-graph builder (repro.analysis.callgraph).

The flow rules are only as sound as the graph under them, so the
adversarial resolution shapes get direct coverage: decorated
functions, ``functools.partial``, facade re-exports (the
``repro.api`` pattern), PEP 562 ``__getattr__`` lazy modules (both the
dict-table and the literal-dispatch style), relative imports, and the
bare-method-name fallback for dynamic dispatch.
"""

import os
import textwrap

import repro
from repro.analysis.astcache import ASTStore
from repro.analysis.callgraph import (
    build_callgraph,
    dotted_name,
    module_name_for,
)

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))


def make_package(tmp_path, files):
    """Write a package tree ``{relpath: source}`` and return its files."""
    written = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        written.append(str(path))
    return sorted(written)


def graph_for(tmp_path, files):
    return build_callgraph(make_package(tmp_path, files), ASTStore())


class TestModuleNames:
    def test_package_module_and_init_names(self, tmp_path):
        files = make_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "",
            },
        )
        names = sorted(module_name_for(path) for path in files)
        assert names == ["pkg", "pkg.sub", "pkg.sub.mod"]

    def test_loose_file_keeps_its_stem(self, tmp_path):
        (tmp_path / "script.py").write_text("")
        assert module_name_for(str(tmp_path / "script.py")) == "script"


class TestResolution:
    def test_direct_and_aliased_imports(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "def target():\n    return 1\n",
                "pkg/b.py": """\
                    from pkg import a
                    from pkg.a import target as t2

                    def caller():
                        a.target()

                    def caller2():
                        t2()
                """,
            },
        )
        assert "pkg.a.target" in graph.functions["pkg.b.caller"].calls
        assert "pkg.a.target" in graph.functions["pkg.b.caller2"].calls

    def test_relative_imports(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/deep/__init__.py": "",
                "pkg/deep/mod.py": """\
                    from ..a import target
                    from . import peer

                    def caller():
                        target()
                        peer.helper()
                """,
                "pkg/deep/peer.py": "def helper():\n    return 2\n",
                "pkg/a.py": "def target():\n    return 1\n",
            },
        )
        calls = graph.functions["pkg.deep.mod.caller"].calls
        assert "pkg.a.target" in calls
        assert "pkg.deep.peer.helper" in calls

    def test_decorated_functions_still_resolve(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """\
                    import functools

                    def deco(fn):
                        return fn

                    @deco
                    @functools.lru_cache(maxsize=None)
                    def decorated():
                        return 1

                    def caller():
                        decorated()
                """,
            },
        )
        assert "pkg.mod.decorated" in graph.functions["pkg.mod.caller"].calls

    def test_functools_partial_binds_an_edge(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """\
                    import functools
                    from functools import partial

                    def work(x):
                        return x

                    def binder():
                        return functools.partial(work, 1)

                    def binder2():
                        return partial(work, 2)
                """,
            },
        )
        assert "pkg.mod.work" in graph.functions["pkg.mod.binder"].calls
        assert "pkg.mod.work" in graph.functions["pkg.mod.binder2"].calls

    def test_function_reference_passed_as_value(self, tmp_path):
        # The spawn-pool shape: pool.submit(run_payload, item) must
        # create an edge even though run_payload is never called here.
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """\
                    def run_payload(item):
                        return item

                    def dispatch(pool, items):
                        return [pool.submit(run_payload, i) for i in items]
                """,
            },
        )
        assert "pkg.mod.run_payload" in graph.functions["pkg.mod.dispatch"].calls

    def test_facade_reexport_resolves_to_definition(self, tmp_path):
        # repro.api style: the facade imports a symbol, callers import
        # the facade.
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/impl.py": "def real_work():\n    return 1\n",
                "pkg/api.py": "from .impl import real_work\n",
                "pkg/user.py": """\
                    from pkg import api

                    def caller():
                        api.real_work()
                """,
            },
        )
        assert "pkg.impl.real_work" in graph.functions["pkg.user.caller"].calls

    def test_pep562_dict_table_lazy_exports(self, tmp_path):
        # The repro.analysis style: _LAZY = {"symbol": "submodule"} and
        # __getattr__ does getattr(import_module(sub), name).
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": """\
                    import importlib

                    _LAZY = {"lazy_fn": "impl"}

                    def __getattr__(name):
                        sub = _LAZY.get(name)
                        if sub is None:
                            raise AttributeError(name)
                        return getattr(importlib.import_module(f".{sub}", __name__), name)
                """,
                "pkg/impl.py": "def lazy_fn():\n    return 1\n",
                "user.py": """\
                    import pkg

                    def caller():
                        pkg.lazy_fn()
                """,
            },
        )
        assert "pkg.impl.lazy_fn" in graph.functions["user.caller"].calls

    def test_pep562_literal_dispatch_lazy_submodule(self, tmp_path):
        # The repro.__init__ style: __getattr__ imports a submodule for
        # names in a literal tuple.
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": """\
                    def __getattr__(name):
                        if name in ("sub",):
                            import importlib

                            return importlib.import_module(f".{name}", __name__)
                        raise AttributeError(name)
                """,
                "pkg/sub.py": "def inner():\n    return 1\n",
                "user.py": """\
                    import pkg

                    def caller():
                        pkg.sub.inner()
                """,
            },
        )
        assert "pkg.sub.inner" in graph.functions["user.caller"].calls

    def test_self_method_resolution(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """\
                    class Thing:
                        def outer(self):
                            return self.inner()

                        def inner(self):
                            return 1
                """,
            },
        )
        assert "pkg.mod.Thing.inner" in graph.functions["pkg.mod.Thing.outer"].calls

    def test_unresolvable_method_falls_back_to_bare_name(self, tmp_path):
        # Dynamic dispatch cannot hide an implementation: obj.merge()
        # links to every known function named merge.
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """\
                    class Report:
                        def merge(self, other):
                            return other
                """,
                "pkg/b.py": """\
                    def combine(obj, other):
                        obj.merge(other)
                """,
            },
        )
        assert "pkg.a.Report.merge" in graph.functions["pkg.b.combine"].calls

    def test_nested_defs_fold_into_parent(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """\
                    def target():
                        return 1

                    def outer():
                        def closure():
                            return target()
                        return closure
                """,
            },
        )
        assert "pkg.mod.target" in graph.functions["pkg.mod.outer"].calls
        assert "pkg.mod.outer.closure" not in graph.functions


class TestReachability:
    def test_bfs_closure_and_origin_attribution(self, tmp_path):
        graph = graph_for(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/mod.py": """\
                    def entry():
                        middle()

                    def middle():
                        leaf()

                    def leaf():
                        return 1

                    def unrelated():
                        return 2
                """,
            },
        )
        reach = graph.reachable(["pkg.mod.entry"])
        assert reach["pkg.mod.leaf"] == "pkg.mod.entry"
        assert "pkg.mod.unrelated" not in reach

    def test_unknown_entrypoint_is_a_loud_error(self, tmp_path):
        graph = graph_for(
            tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": "def f():\n    pass\n"}
        )
        graph.reachable(["pkg.mod.renamed_away"])
        assert any("renamed_away" in error for error in graph.errors)


class TestRealTree:
    def test_repro_api_facade_resolves_run_emulation(self):
        graph = build_callgraph(
            [
                os.path.join(SRC_REPRO, "api.py"),
                os.path.join(SRC_REPRO, "__init__.py"),
                os.path.join(SRC_REPRO, "nids", "__init__.py"),
                os.path.join(SRC_REPRO, "nids", "emulation.py"),
            ],
            ASTStore(),
        )
        module = graph.modules["repro.api"]
        resolved = graph.resolve(module, "run_emulation")
        assert resolved == "repro.nids.emulation.run_emulation"

    def test_lazy_analysis_surface_resolves_through_repro_init(self):
        graph = build_callgraph(
            [
                os.path.join(SRC_REPRO, "__init__.py"),
                os.path.join(SRC_REPRO, "analysis", "__init__.py"),
                os.path.join(SRC_REPRO, "analysis", "lint.py"),
            ],
            ASTStore(),
        )
        resolved = graph._resolve_canonical("repro.analysis.lint_paths")
        assert resolved == "repro.analysis.lint.lint_paths"
