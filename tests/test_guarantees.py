"""Empirical validation of the paper's analytical guarantees."""

import math
import random

import pytest

from repro.core.nips_milp import solve_relaxation
from repro.core.rounding import RoundingVariant, best_of_roundings
from repro.nids.microbench import run_microbenchmark
from repro.traffic.profiles import web_heavy_profile
from tests.test_nips_milp import small_problem


class TestRoundingGuarantee:
    """Fig. 9's analysis: the basic algorithm achieves at least
    ``OptLP / O(log N)`` — we check ``OptLP / (c * log N)`` with a
    generous constant across random instances, and that in practice it
    does far better (the paper measures >70% for the improved variants).
    """

    @pytest.mark.parametrize("seed", [3, 17, 29, 47])
    def test_basic_rounding_meets_log_n_bound(self, seed):
        problem = small_problem(num_rules=6, cam=2.0, seed=seed, num_nodes=6)
        relaxed = solve_relaxation(problem)
        best = best_of_roundings(
            problem, RoundingVariant.BASIC, iterations=6, seed=seed, relaxed=relaxed
        )
        log_n = math.log(max(problem.num_nodes, problem.num_rules))
        bound = relaxed.objective / (4.0 * log_n)
        assert best.solution.objective >= bound

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_improvements_far_exceed_the_bound(self, seed):
        problem = small_problem(num_rules=6, cam=2.0, seed=seed, num_nodes=6)
        relaxed = solve_relaxation(problem)
        greedy = best_of_roundings(
            problem,
            RoundingVariant.GREEDY_LP,
            iterations=4,
            seed=seed,
            relaxed=relaxed,
        )
        assert greedy.fraction_of_lp >= 0.85


class TestOverheadBandsAcrossProfiles:
    """Fig. 5's bands should not be an artifact of the mixed profile:
    the module-class structure (cheap / policy-stage / hoistable) must
    hold for a different traffic mix too."""

    def test_web_heavy_profile_same_structure(self, monkeypatch):
        import repro.nids.microbench as microbench

        original = microbench._standalone_trace

        def web_trace(num_sessions, seed):
            from repro.topology.datasets import internet2
            from repro.topology.routing import PathSet
            from repro.traffic.generator import GeneratorConfig, TrafficGenerator

            topology = internet2()
            generator = TrafficGenerator(
                topology,
                PathSet(topology),
                profile=web_heavy_profile(),
                config=GeneratorConfig(seed=seed),
            )
            return generator.generate(num_sessions)

        monkeypatch.setattr(microbench, "_standalone_trace", web_trace)
        rows = run_microbenchmark(num_sessions=2500, runs=1)
        by_name = {row.module: row for row in rows}
        # Structure, not exact numbers:
        for name in ("baseline", "signature", "blaster", "synflood"):
            assert by_name[name].cpu_event.mean < 0.08
        for name in ("scan", "tftp"):
            assert by_name[name].cpu_policy.mean == pytest.approx(
                by_name[name].cpu_event.mean, rel=1e-9
            )
        for name in ("http", "irc", "login"):
            assert by_name[name].cpu_event.mean < by_name[name].cpu_policy.mean
        for row in rows:
            assert row.mem_policy.mean <= 0.08
