"""Tests for the single-vantage-point cluster baseline."""

import pytest

from repro.nids.cluster import (
    ClusterReport,
    cluster_size_for_target,
    emulate_cluster,
)
from repro.nids.modules import module_set
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2()
    generator = TrafficGenerator(
        topo, PathSet(topo), config=GeneratorConfig(seed=181)
    )
    sessions = generator.generate(2500)
    return topo, generator, sessions


@pytest.fixture(scope="module")
def modules():
    return module_set(21)


class TestClusterEmulation:
    def test_single_worker_no_replication(self, world, modules):
        _, _, sessions = world
        report = emulate_cluster("NYCM", sessions, modules, num_workers=1)
        assert report.replicated_packets == 0.0
        assert report.replication_fraction == 0.0

    def test_more_workers_lower_max_load(self, world, modules):
        _, _, sessions = world
        one = emulate_cluster("NYCM", sessions, modules, num_workers=1)
        four = emulate_cluster("NYCM", sessions, modules, num_workers=4)
        assert four.max_worker_cpu < one.max_worker_cpu

    def test_replication_overhead_appears_with_workers(self, world, modules):
        """Host-scoped analyses force cross-worker replication once the
        cluster has more than one backend — the paper's critique."""
        _, _, sessions = world
        report = emulate_cluster("NYCM", sessions, modules, num_workers=4)
        assert report.replicated_packets > 0
        # A session may need copies at several distinct owners (scan,
        # blaster, SYN-flood aggregate at different workers), so the
        # copy fraction can exceed 1 but is bounded by the number of
        # host-scoped modules.
        host_scoped = 3
        assert 0.0 < report.replication_fraction <= host_scoped

    def test_total_cpu_exceeds_sum_of_work(self, world, modules):
        """Replication makes the cluster's total CPU strictly larger
        than a single box doing the same analyses."""
        _, _, sessions = world
        one = emulate_cluster("NYCM", sessions, modules, num_workers=1)
        four = emulate_cluster("NYCM", sessions, modules, num_workers=4)
        assert four.total_cpu > one.total_cpu

    def test_workers_validated(self, world, modules):
        _, _, sessions = world
        with pytest.raises(ValueError):
            emulate_cluster("NYCM", sessions, modules, num_workers=0)

    def test_deterministic(self, world, modules):
        _, _, sessions = world
        a = emulate_cluster("NYCM", sessions, modules, num_workers=3)
        b = emulate_cluster("NYCM", sessions, modules, num_workers=3)
        assert a.max_worker_cpu == b.max_worker_cpu
        assert a.replicated_packets == b.replicated_packets

    def test_host_scoped_state_on_one_worker(self, world, modules):
        """Per-source/per-destination state must not be split across
        workers — the owner-hashing invariant detection relies on."""
        _, _, sessions = world
        report = emulate_cluster("NYCM", sessions, modules, num_workers=4)
        # Proxy check: total distinct scan sources across workers equals
        # the global distinct-source count (no source double-counted).
        # Memory attribution already encodes the per-owner item sets, so
        # duplicates would inflate memory; recompute the ideal and bound.
        distinct_sources = len({s.tuple.src for s in sessions})
        scan_spec = next(m for m in modules if m.name == "scan")
        total_mem = sum(u.mem_bytes for u in report.worker_usage)
        # There is no strict equation over total memory here, but the
        # scan table must fit within one-owner-per-source accounting:
        assert total_mem > 0 and distinct_sources > 0


class TestClusterSizing:
    def test_sizing_monotone(self, world, modules):
        _, _, sessions = world
        one = emulate_cluster("NYCM", sessions, modules, num_workers=1)
        needed = cluster_size_for_target(
            "NYCM", sessions, modules, target_cpu=one.max_worker_cpu / 2
        )
        assert needed is not None and needed >= 2

    def test_unreachable_target(self, world, modules):
        _, _, sessions = world
        needed = cluster_size_for_target(
            "NYCM", sessions, modules, target_cpu=1.0, max_workers=3
        )
        assert needed is None


class TestAgainstCoordination:
    def test_coordination_avoids_replication_overhead(self, world, modules):
        """The paper's argument in one assertion: network-wide
        coordination performs the same aggregate analysis with zero
        replicated packets, while the chokepoint cluster pays the
        replication tax on every cross-worker host aggregate."""
        topo, generator, sessions = world
        from repro.core.nids_deployment import plan_deployment
        from repro.nids.emulation import Traffic, run_emulation

        topo2 = topo.copy().set_uniform_capacities(cpu=1.0, mem=1.0)
        deployment = plan_deployment(topo2, generator.paths, modules, sessions)
        coordinated = run_emulation(
            Traffic.materialized(generator, sessions), deployment
        )
        cluster = emulate_cluster("NYCM", sessions, modules, num_workers=11)

        expected_module_work = sum(
            spec.session_cpu(s) for spec in modules for s in sessions
        )
        coordinated_module_work = sum(
            sum(r.module_cpu.values()) for r in coordinated.reports.values()
        )
        assert coordinated_module_work == pytest.approx(
            expected_module_work, rel=1e-6
        )
        assert cluster.replicated_packets > 0
