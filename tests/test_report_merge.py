"""PartialInstanceReport merge semantics for chunked runs.

Merging per-chunk partials — in any order, any chunking — must equal
the one-shot accounting exactly: counters add, distinct item keys
union, CPU accumulators merge exactly, and per-run quantities (the
process base memory, item memory) are applied once at finalize rather
than summed across chunks.  Serialization (dict and pickle) is
loss-free so partials can cross process boundaries and still merge.
"""

import json
import pickle

import pytest

from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
from repro.core.exactsum import ExactSum
from repro.core.manifest import full_manifest
from repro.nids.engine import (
    BroInstance,
    BroMode,
    EmulationConfig,
    InstanceReport,
    PartialInstanceReport,
)
from repro.nids.modules import STANDARD_MODULES
from repro.nids.resources import DEFAULT_COST_MODEL
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def trace():
    topo = internet2()
    generator = TrafficGenerator(
        topo, PathSet(topo), config=GeneratorConfig(seed=43)
    )
    return topo, generator.generate(3000)


def _instance(topo):
    dispatcher = CoordinatedDispatcher(
        node="standalone",
        manifest=full_manifest("standalone"),
        modules=STANDARD_MODULES,
        resolver=UnitResolver(topo.node_names),
    )
    return BroInstance(
        node="standalone",
        modules=STANDARD_MODULES,
        mode=BroMode.COORD_EVENT,
        dispatcher=dispatcher,
        config=EmulationConfig(),
    )


@pytest.fixture(scope="module")
def one_shot_and_chunked(trace):
    topo, sessions = trace
    one_shot = _instance(topo).process_sessions_partial(sessions)
    instance = _instance(topo)
    partials = [
        instance.process_sessions_partial(sessions[start : start + 700])
        for start in range(0, len(sessions), 700)
    ]
    return topo, sessions, one_shot, partials


class TestMergeExactness:
    def test_merged_partial_equals_one_shot(self, one_shot_and_chunked):
        _, _, one_shot, partials = one_shot_and_chunked
        merged = partials[0]
        rebuilt = PartialInstanceReport.from_dict(merged.to_dict())
        for partial in partials[1:]:
            rebuilt.merge(partial)
        assert rebuilt == one_shot

    def test_merge_order_does_not_matter(self, one_shot_and_chunked):
        _, _, one_shot, partials = one_shot_and_chunked
        reversed_merge = PartialInstanceReport.from_dict(partials[-1].to_dict())
        for partial in reversed(partials[:-1]):
            reversed_merge.merge(partial)
        assert reversed_merge == one_shot

    def test_finalized_reports_bit_identical(self, one_shot_and_chunked):
        """The user-facing guarantee: chunked and one-shot runs render
        the same InstanceReport, float for float."""
        topo, sessions, one_shot, partials = one_shot_and_chunked
        merged = PartialInstanceReport.from_dict(partials[0].to_dict())
        for partial in partials[1:]:
            merged.merge(partial)
        instance = _instance(topo)
        assert instance.finalize_partial(merged) == instance.finalize_partial(
            one_shot
        )
        assert instance.finalize_partial(merged) == _instance(topo).process_sessions(
            sessions
        )

    def test_process_base_and_items_not_double_counted(self, one_shot_and_chunked):
        """The classic max/sum confusion: per-process base memory and
        distinct-item memory are finalize-time quantities.  Summing the
        chunks' finalized memories must NOT equal the merged memory."""
        topo, _, one_shot, partials = one_shot_and_chunked
        instance = _instance(topo)
        summed = sum(instance.finalize_partial(p).mem_bytes for p in partials)
        merged_mem = instance.finalize_partial(one_shot).mem_bytes
        base = float(DEFAULT_COST_MODEL.process_base_bytes)
        # Naive summation counts the base once per chunk.
        assert summed >= merged_mem + (len(partials) - 1) * base
        # And distinct items must union, not add: every module's item
        # count in the merge is bounded by the sum of chunk counts.
        merged = PartialInstanceReport.from_dict(partials[0].to_dict())
        for partial in partials[1:]:
            merged.merge(partial)
        for name in merged.module_item_keys:
            chunk_total = sum(len(p.module_item_keys[name]) for p in partials)
            assert len(merged.module_item_keys[name]) <= chunk_total

    def test_merge_validation(self, one_shot_and_chunked):
        topo, _, one_shot, _ = one_shot_and_chunked
        other_node = PartialInstanceReport.empty(
            "elsewhere", BroMode.COORD_EVENT, list(one_shot.module_cpu)
        )
        with pytest.raises(ValueError):
            one_shot.merge(other_node)
        other_modules = PartialInstanceReport.empty(
            "standalone", BroMode.COORD_EVENT, ["only-one"]
        )
        with pytest.raises(ValueError):
            one_shot.merge(other_modules)


class TestRoundTrips:
    def test_partial_dict_round_trip_is_loss_free(self, one_shot_and_chunked):
        topo, _, one_shot, _ = one_shot_and_chunked
        payload = json.dumps(one_shot.to_dict())  # JSON-compatible
        rebuilt = PartialInstanceReport.from_dict(json.loads(payload))
        assert rebuilt == one_shot
        instance = _instance(topo)
        assert instance.finalize_partial(rebuilt) == instance.finalize_partial(
            one_shot
        )

    def test_partial_pickle_round_trip(self, one_shot_and_chunked):
        _, _, one_shot, partials = one_shot_and_chunked
        rebuilt = pickle.loads(pickle.dumps(one_shot))
        assert rebuilt == one_shot
        # A pickled-and-revived partial still merges exactly.
        revived = [pickle.loads(pickle.dumps(p)) for p in partials]
        merged = revived[0]
        for partial in revived[1:]:
            merged.merge(partial)
        assert merged == one_shot

    def test_instance_report_round_trips(self, one_shot_and_chunked):
        topo, _, one_shot, _ = one_shot_and_chunked
        report = _instance(topo).finalize_partial(one_shot)
        assert InstanceReport.from_dict(report.to_dict()) == report
        assert pickle.loads(pickle.dumps(report)) == report

    def test_exactsum_transport(self):
        acc = ExactSum.of([0.1, 1e-300, 1e300, -2.5e-13])
        assert ExactSum.from_hex(acc.to_hex()) == acc
        assert pickle.loads(pickle.dumps(acc)) == acc
