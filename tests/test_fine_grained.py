"""Tests for the §2.5 fine-grained coordination extension.

The paper: "node 11 still needs to track all packets because a
connection is the smallest granularity of processing. ... One direction
of future work is to design NIDS that inherently support fine-grained
coordination capabilities ... (e.g., first packet of a flow for Scan)."
With ``fine_grained=True`` the engine honours scan's FIRST_PACKET
subscription with a lightweight record, removing that duplication.
"""

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import BroInstance, BroMode, EmulationConfig, TrackingLevel
from repro.nids.modules import SCAN, STANDARD_MODULES, module_set
from repro.nids.modules.base import Subscription
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=131))
    sessions = generator.generate(4000)
    deployment = plan_deployment(topo, paths, module_set(21), sessions)
    return topo, generator, sessions, deployment


class TestSubscriptionModel:
    def test_scan_subscribes_to_first_packets(self):
        assert SCAN.subscription is Subscription.FIRST_PACKET

    def test_other_modules_need_full_connections(self):
        for spec in STANDARD_MODULES:
            if spec.name != "scan":
                assert spec.subscription is Subscription.FULL_CONNECTION


class TestTrackingLevels:
    def test_ingress_downgraded_to_light(self, world):
        """At an ingress whose only responsibility for a session is
        scan, fine-grained mode creates a light record, not a full one."""
        topo, generator, sessions, deployment = world
        node = "NYCM"
        full = BroInstance(
            node,
            deployment.modules,
            BroMode.COORD_EVENT,
            dispatcher=deployment.dispatcher(node),
        )
        fine = BroInstance(
            node,
            deployment.modules,
            BroMode.COORD_EVENT,
            dispatcher=deployment.dispatcher(node),
            config=EmulationConfig(fine_grained=True),
        )
        trace = generator.split_by_node(sessions, transit=True)[node]
        full_report = full.process_sessions(trace)
        fine_report = fine.process_sessions(trace)
        assert fine_report.light_connections > 0
        assert (
            fine_report.tracked_connections < full_report.tracked_connections
        )
        # Light + full under fine-grained >= full tracking coverage:
        # nothing scan needed is dropped.
        assert (
            fine_report.tracked_connections + fine_report.light_connections
            >= full_report.tracked_connections
        )

    def test_fine_grained_reduces_hot_node_load(self, world):
        """The extension's promised benefit: less duplicated baseline
        work at the scan-forced ingresses lowers CPU and memory."""
        topo, generator, sessions, deployment = world
        traffic = Traffic.materialized(generator, sessions)
        coarse = run_emulation(traffic, deployment)
        fine = run_emulation(
            traffic, deployment, config=EmulationConfig(fine_grained=True)
        )
        assert fine.max_cpu < coarse.max_cpu
        assert fine.max_mem_bytes < coarse.max_mem_bytes

    def test_module_work_unchanged(self, world):
        """Fine-grained tracking changes *state* costs only — the
        analysis work performed (and hence detection) is identical."""
        topo, generator, sessions, deployment = world
        traffic = Traffic.materialized(generator, sessions)
        coarse = run_emulation(traffic, deployment)
        fine = run_emulation(
            traffic, deployment, config=EmulationConfig(fine_grained=True)
        )
        for node in topo.node_names:
            assert fine.reports[node].module_cpu == pytest.approx(
                coarse.reports[node].module_cpu
            )

    def test_detection_equivalence_preserved(self, world):
        topo, generator, sessions, _ = world
        deployment = plan_deployment(
            topo, generator.paths, STANDARD_MODULES, sessions
        )
        traffic = Traffic.materialized(generator, sessions)
        coarse = run_emulation(
            traffic, deployment, config=EmulationConfig(run_detectors=True)
        )
        fine = run_emulation(
            traffic,
            deployment,
            config=EmulationConfig(run_detectors=True, fine_grained=True),
        )
        assert fine.alert_keys() == coarse.alert_keys()

    def test_unmodified_mode_unaffected(self, world):
        topo, generator, sessions, deployment = world
        instance = BroInstance(
            "STTL",
            deployment.modules,
            BroMode.UNMODIFIED,
            config=EmulationConfig(fine_grained=True),
        )
        trace = generator.split_by_node(sessions, transit=False)["STTL"]
        report = instance.process_sessions(trace)
        assert report.light_connections == 0
        assert report.tracked_connections == len(trace)
