"""Tests for the manifest/assignment JSON wire format."""

import json

import pytest

from repro.core.manifest import full_manifest, verify_manifests
from repro.core.manifest_io import (
    SCHEMA_VERSION,
    assignment_from_dict,
    dump_assignment,
    dump_manifests,
    load_assignment,
    load_manifests,
    manifest_from_dict,
    manifest_to_dict,
)
from repro.core.nids_deployment import plan_deployment
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def deployment():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=121))
    sessions = generator.generate(1500)
    return plan_deployment(topo, paths, STANDARD_MODULES, sessions)


class TestManifestRoundTrip:
    def test_roundtrip_preserves_entries(self, deployment):
        text = dump_manifests(deployment.manifests)
        restored = load_manifests(text)
        assert set(restored) == set(deployment.manifests)
        for node, manifest in deployment.manifests.items():
            loaded = restored[node]
            assert set(loaded.entries) == set(manifest.entries)
            for key, ranges in manifest.entries.items():
                assert [
                    (r.lo, r.hi) for r in loaded.entries[key]
                ] == pytest.approx([(r.lo, r.hi) for r in ranges])

    def test_roundtrip_preserves_invariants(self, deployment):
        restored = load_manifests(dump_manifests(deployment.manifests))
        verify_manifests(deployment.units, restored)

    def test_roundtrip_preserves_decisions(self, deployment):
        restored = load_manifests(dump_manifests(deployment.manifests))
        for node, manifest in list(deployment.manifests.items())[:4]:
            for (class_name, key) in list(manifest.entries)[:10]:
                for probe in (0.1, 0.5, 0.9):
                    assert restored[node].contains(
                        class_name, key, probe
                    ) == manifest.contains(class_name, key, probe)

    def test_full_manifest_roundtrip(self):
        manifest = full_manifest("standalone")
        restored = manifest_from_dict(manifest_to_dict(manifest))
        assert restored.full
        assert restored.contains("anything", ("x",), 0.5)

    def test_output_is_valid_json(self, deployment):
        data = json.loads(dump_manifests(deployment.manifests))
        assert data["version"] == SCHEMA_VERSION
        assert len(data["manifests"]) == 11

    def test_version_check(self):
        with pytest.raises(ValueError):
            manifest_from_dict({"version": 99, "node": "x"})
        with pytest.raises(ValueError):
            load_manifests(json.dumps({"version": 0, "manifests": []}))

    def test_deterministic_output(self, deployment):
        assert dump_manifests(deployment.manifests) == dump_manifests(
            deployment.manifests
        )


class TestAssignmentRoundTrip:
    def test_roundtrip(self, deployment):
        assignment = deployment.assignment
        restored = load_assignment(dump_assignment(assignment))
        assert restored.objective == pytest.approx(assignment.objective)
        assert restored.cpu_load == pytest.approx(assignment.cpu_load)
        assert restored.mem_load == pytest.approx(assignment.mem_load)
        for key, value in assignment.fractions.items():
            if value > 1e-12:
                assert restored.fractions[key] == pytest.approx(value)

    def test_coverage_preserved(self, deployment):
        restored = load_assignment(dump_assignment(deployment.assignment))
        assert restored.coverage == deployment.assignment.coverage

    def test_version_check(self):
        with pytest.raises(ValueError):
            assignment_from_dict({"version": 2})

    def test_manifests_rebuildable_from_loaded_assignment(self, deployment):
        """A reloaded assignment regenerates byte-identical manifests —
        the operations center can rebuild from its stored solution."""
        from repro.core.manifest import generate_manifests

        restored = load_assignment(dump_assignment(deployment.assignment))
        rebuilt = generate_manifests(
            deployment.units, restored, deployment.topology.node_names
        )
        assert dump_manifests(rebuilt) == dump_manifests(deployment.manifests)


from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    fractions=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=6
    ),
    node_count=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_property_manifest_roundtrip(fractions, node_count):
    """Arbitrary generated manifests survive the wire format exactly."""
    from repro.core.manifest import NodeManifest, generate_manifests
    from repro.core.nids_lp import NIDSAssignment
    from repro.core.units import CoordinationUnit

    nodes = [f"n{i}" for i in range(max(node_count, len(fractions)))]
    eligible = tuple(nodes[: len(fractions)])
    total = sum(fractions)
    normalized = [f / total for f in fractions]
    unit = CoordinationUnit(
        class_name="c",
        key=("k",),
        eligible=eligible,
        pkts=1.0,
        items=1.0,
        cpu_work=1.0,
        mem_bytes=1.0,
    )
    assignment = NIDSAssignment(
        fractions={("c", ("k",), n): f for n, f in zip(eligible, normalized)},
        cpu_load={},
        mem_load={},
        objective=0.0,
        coverage={("c", ("k",)): 1.0},
        solve_seconds=0.0,
    )
    manifests = generate_manifests([unit], assignment, nodes)
    restored = load_manifests(dump_manifests(manifests))
    for node in nodes:
        assert restored[node].entries.keys() == manifests[node].entries.keys()
        for key, ranges in manifests[node].entries.items():
            restored_ranges = restored[node].entries[key]
            assert [(r.lo, r.hi) for r in restored_ranges] == [
                (r.lo, r.hi) for r in ranges
            ]


class TestManifestDelta:
    """Delta encoding used by the coordination plane's config pushes."""

    def _manifests(self):
        from repro.core.manifest import NodeManifest
        from repro.hashing.ranges import HashRange

        old = NodeManifest(
            node="n1",
            entries={
                ("http", ("a", "b")): (HashRange(0.0, 0.5),),
                ("scan", ("a",)): (HashRange(0.2, 0.4), HashRange(0.6, 0.7)),
                ("irc", ("b",)): (HashRange(0.0, 1.0),),
            },
        )
        new = NodeManifest(
            node="n1",
            entries={
                ("http", ("a", "b")): (HashRange(0.0, 0.5),),  # unchanged
                ("scan", ("a",)): (HashRange(0.1, 0.4),),  # changed
                ("sig", ("c", "d")): (HashRange(0.9, 1.0),),  # added
                # irc removed
            },
        )
        return old, new

    def test_roundtrip_reproduces_new_exactly(self):
        from repro.core.manifest_io import apply_manifest_delta, manifest_diff

        old, new = self._manifests()
        delta = manifest_diff(old, new)
        restored = apply_manifest_delta(old, delta)
        assert restored.node == new.node
        assert restored.entries == new.entries
        assert restored.full == new.full

    def test_delta_carries_only_differences(self):
        from repro.core.manifest_io import manifest_diff

        old, new = self._manifests()
        delta = manifest_diff(old, new)
        changed = {(e["class"], tuple(e["unit"])) for e in delta["changed"]}
        removed = {(e["class"], tuple(e["unit"])) for e in delta["removed"]}
        assert changed == {("scan", ("a",)), ("sig", ("c", "d"))}
        assert removed == {("irc", ("b",))}

    def test_delta_is_json_schema_v1(self):
        from repro.core.manifest_io import manifest_diff

        old, new = self._manifests()
        delta = manifest_diff(old, new)
        assert delta["version"] == SCHEMA_VERSION
        assert delta["kind"] == "delta"
        # Must survive the JSON wire (floats round-trip exactly).
        assert json.loads(json.dumps(delta)) == delta

    def test_empty_delta_detected(self):
        from repro.core.manifest_io import delta_is_empty, manifest_diff

        old, _ = self._manifests()
        delta = manifest_diff(old, old)
        assert delta_is_empty(delta)
        assert delta["changed"] == [] and delta["removed"] == []

    def test_node_mismatch_rejected(self):
        from repro.core.manifest import NodeManifest
        from repro.core.manifest_io import apply_manifest_delta, manifest_diff

        old, new = self._manifests()
        with pytest.raises(ValueError):
            manifest_diff(old, NodeManifest(node="n2"))
        delta = manifest_diff(old, new)
        with pytest.raises(ValueError):
            apply_manifest_delta(NodeManifest(node="n2"), delta)

    def test_bad_version_and_kind_rejected(self):
        from repro.core.manifest_io import apply_manifest_delta, manifest_diff

        old, new = self._manifests()
        delta = manifest_diff(old, new)
        with pytest.raises(ValueError):
            apply_manifest_delta(old, {**delta, "version": 99})
        with pytest.raises(ValueError):
            apply_manifest_delta(old, {**delta, "kind": "manifest"})

    def test_deployment_manifest_roundtrip(self, deployment):
        """Real LP-produced manifests delta-roundtrip node by node."""
        from repro.core.manifest import NodeManifest
        from repro.core.manifest_io import apply_manifest_delta, manifest_diff

        for node, manifest in deployment.manifests.items():
            empty = NodeManifest(node=node)
            delta = manifest_diff(empty, manifest)
            assert apply_manifest_delta(empty, delta).entries == manifest.entries
