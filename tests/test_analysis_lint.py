"""Tests for the domain AST lint (``repro.analysis``, REP001-REP005)."""

import json
import os
import textwrap

import pytest

import repro
from repro.analysis.cli import main as analysis_main
from repro.analysis.lint import (
    LINT_SCHEMA_VERSION,
    lint_paths,
    render_json,
    render_text,
)
from repro.analysis.rules import RULE_CATALOGUE, default_rules

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))


def run_lint(tmp_path, source, name="mod.py", root=None):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([str(path)], root=str(root) if root else str(tmp_path))


def rule_ids(result):
    return [v.rule_id for v in result.violations]


class TestREP001FloatEquality:
    def test_flags_equality_with_float_literal(self, tmp_path):
        result = run_lint(tmp_path, "def f(x):\n    return x == 1.0\n")
        assert rule_ids(result) == ["REP001"]
        assert "1.0" in result.violations[0].message

    def test_flags_not_equal_and_literal_on_left(self, tmp_path):
        result = run_lint(
            tmp_path, "def f(x, y):\n    return 0.5 != x or y == 0.25\n"
        )
        assert rule_ids(result) == ["REP001", "REP001"]

    def test_integer_literals_and_ordering_pass(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(x):
                return x == 1 or x >= 1.0 or abs(x - 1.0) <= 1e-9
            """,
        )
        assert result.ok

    def test_chained_comparison_checks_each_eq_link(self, tmp_path):
        result = run_lint(tmp_path, "def f(a, b):\n    return a < b == 1.0\n")
        assert rule_ids(result) == ["REP001"]

    def test_reseeding_the_headroom_bug_is_caught(self, tmp_path):
        # The acceptance scenario: the exact comparison this PR removed
        # from repro.core.reconfigure must be flagged if reintroduced.
        result = run_lint(
            tmp_path,
            """\
            def conservative_units(units, headroom=1.3):
                if headroom == 1.0:
                    return list(units)
                return units
            """,
        )
        assert rule_ids(result) == ["REP001"]


class TestREP002UnseededRandomness:
    def test_global_draw_flagged(self, tmp_path):
        result = run_lint(
            tmp_path, "import random\n\nx = random.random()\n"
        )
        assert rule_ids(result) == ["REP002"]

    def test_aliased_import_resolved(self, tmp_path):
        result = run_lint(
            tmp_path, "import random as rnd\n\nx = rnd.choice([1, 2])\n"
        )
        assert rule_ids(result) == ["REP002"]

    def test_numpy_legacy_global_flagged(self, tmp_path):
        result = run_lint(
            tmp_path, "import numpy as np\n\nx = np.random.rand(3)\n"
        )
        assert rule_ids(result) == ["REP002"]

    def test_unseeded_constructors_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import random
            import numpy as np

            a = random.Random()
            b = np.random.default_rng()
            """,
        )
        assert rule_ids(result) == ["REP002", "REP002"]

    def test_seeded_generators_pass(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import random
            import numpy as np

            a = random.Random(7)
            b = np.random.default_rng(7)
            c = a.random() + b.random()
            """,
        )
        assert result.ok


class TestREP003FacadeDrift:
    def test_dangling_all_entry_flagged(self, tmp_path):
        result = run_lint(
            tmp_path, "def real():\n    pass\n\n__all__ = [\"ghost\", \"real\"]\n"
        )
        assert rule_ids(result) == ["REP003"]
        assert "ghost" in result.violations[0].message

    def test_unexported_public_binding_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def exported():
                pass

            def leaked():
                pass

            __all__ = ["exported"]
            """,
        )
        assert rule_ids(result) == ["REP003"]
        assert "leaked" in result.violations[0].message

    def test_private_names_and_no_all_pass(self, tmp_path):
        assert run_lint(tmp_path, "def _internal():\n    pass\n").ok
        assert run_lint(tmp_path, "def public():\n    pass\n").ok

    def test_pep562_string_dispatch_resolves(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def __getattr__(name):
                if name == "api":
                    import importlib

                    return importlib.import_module(".api", __name__)
                raise AttributeError(name)

            __all__ = ["api"]
            """,
        )
        assert result.ok

    def test_pep562_lazy_dict_resolves(self, tmp_path):
        # The repro.nids / repro.nips facade idiom: a module-level dict
        # consulted inside __getattr__ serves the lazy names.
        result = run_lint(
            tmp_path,
            """\
            _LAZY_EXPORTS = {
                "BroInstance": ("pkg.engine", "BroInstance"),
                "module_set": ("pkg.modules", "module_set"),
            }


            def __getattr__(name):
                import importlib

                module_name, attr = _LAZY_EXPORTS[name]
                return getattr(importlib.import_module(module_name), attr)


            __all__ = ["BroInstance", "module_set"]
            """,
        )
        assert result.ok

    def test_type_checking_imports_count_as_bindings(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from .lint import Rule

            def __getattr__(name):
                raise AttributeError(name)

            __all__ = ["Rule"]
            """,
        )
        assert result.ok


class TestREP004MetricNameDrift:
    @staticmethod
    def project(tmp_path, catalogue_rows, source):
        docs = tmp_path / "docs"
        docs.mkdir()
        rows = "\n".join(catalogue_rows)
        (docs / "observability.md").write_text(
            "# Observability\n\n## Metric catalogue\n\n"
            "| Metric | Type | Labels | Meaning |\n|---|---|---|---|\n"
            f"{rows}\n\n## Unrelated\n\n| `not_a_metric` | x | x | x |\n"
        )
        (tmp_path / "pkg.py").write_text(textwrap.dedent(source))
        return lint_paths([str(tmp_path / "pkg.py")], root=str(tmp_path))

    def test_declared_but_undocumented_flagged(self, tmp_path):
        result = self.project(
            tmp_path,
            ["| `known_total` | counter | — | fine |"],
            """\
            registry.counter("known_total", "fine")
            registry.counter("rogue_total", "never documented")
            """,
        )
        assert rule_ids(result) == ["REP004"]
        assert "rogue_total" in result.violations[0].message

    def test_documented_but_undeclared_flagged_at_doc_line(self, tmp_path):
        result = self.project(
            tmp_path,
            [
                "| `known_total` | counter | — | fine |",
                "| `orphan_total` | counter | — | dashboard ghost |",
            ],
            'registry.counter("known_total", "fine")\n',
        )
        assert rule_ids(result) == ["REP004"]
        violation = result.violations[0]
        assert "orphan_total" in violation.message
        assert violation.path.endswith("observability.md")

    def test_span_implies_companion_counter(self, tmp_path):
        result = self.project(
            tmp_path,
            [
                "| `phase_seconds` | span | — | timing |",
                "| `phase_seconds_total` | counter | — | companion |",
            ],
            'registry.span("phase_seconds", "timing")\n',
        )
        assert result.ok

    def test_tables_outside_catalogue_section_ignored(self, tmp_path):
        result = self.project(
            tmp_path,
            ["| `known_total` | counter | — | fine |"],
            'registry.counter("known_total", "fine")\n',
        )
        assert result.ok  # `not_a_metric` under "## Unrelated" is not drift


class TestREP005MutableDefaults:
    def test_literal_and_call_defaults_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            def f(a=[], b={}, *, c=set()):
                return a, b, c
            """,
        )
        assert rule_ids(result) == ["REP005", "REP005", "REP005"]

    def test_immutable_defaults_pass(self, tmp_path):
        result = run_lint(
            tmp_path,
            "def f(a=None, b=(), c=0, d=frozenset()):\n    return a, b, c, d\n",
        )
        assert result.ok


class TestREP006DeprecatedEmulationAPI:
    def test_direct_entrypoint_calls_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.nids import emulate_edge, emulate_coordinated

            def f(generator, sessions, modules, deployment):
                edge = emulate_edge(generator, sessions, modules)
                coord = emulate_coordinated(deployment, generator, sessions)
                return edge, coord
            """,
        )
        assert rule_ids(result) == ["REP006", "REP006"]
        assert "deprecated wrapper" in result.violations[0].message
        assert "run_emulation" in result.violations[0].message

    def test_module_attribute_calls_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            import repro.nids as nids
            from repro import api

            def f(generator, chunks, modules, deployment):
                a = nids.emulate_edge_stream(generator, chunks, modules)
                b = api.emulate_coordinated_stream(deployment, generator, chunks)
                return a, b
            """,
        )
        assert rule_ids(result) == ["REP006", "REP006"]

    def test_legacy_shim_keywords_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.nids.emulation import compare_deployments
            from repro.nids.engine import BroInstance, BroMode

            def f(deployment, generator, sessions, model):
                instance = BroInstance(
                    node="NYCM",
                    modules=deployment.modules,
                    mode=BroMode.UNMODIFIED,
                    cost_model=model,
                )
                row = compare_deployments(
                    deployment, generator, sessions, 1.0, cost_model=model
                )
                return instance, row
            """,
        )
        assert rule_ids(result) == ["REP006", "REP006"]
        assert "config=EmulationConfig(cost_model=...)" in result.violations[0].message

    def test_new_surface_passes(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.nids import Traffic, run_emulation
            from repro.nids.engine import EmulationConfig

            def f(generator, sessions, deployment, model):
                config = EmulationConfig(cost_model=model, run_detectors=True)
                return run_emulation(
                    Traffic.materialized(generator, sessions),
                    deployment,
                    config=config,
                )
            """,
        )
        assert result.ok

    def test_repnoqa_suppresses(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            from repro.nids import emulate_edge

            def f(generator, sessions, modules):
                return emulate_edge(generator, sessions, modules)  # repnoqa: REP006 -- deprecation under test
            """,
        )
        assert result.ok

    def test_catalogued(self):
        assert "REP006" in RULE_CATALOGUE
        assert "run_emulation" in RULE_CATALOGUE["REP006"]


class TestSuppressions:
    def test_line_suppression_with_rule_id(self, tmp_path):
        result = run_lint(
            tmp_path,
            "def f(x):\n    return x == 1.0  # repnoqa: REP001 -- exactness\n",
        )
        assert result.ok

    def test_bare_line_suppression(self, tmp_path):
        result = run_lint(tmp_path, "def f(x):\n    return x == 1.0  # repnoqa\n")
        assert result.ok

    def test_mismatched_rule_id_does_not_suppress(self, tmp_path):
        result = run_lint(
            tmp_path, "def f(x):\n    return x == 1.0  # repnoqa: REP005\n"
        )
        assert rule_ids(result) == ["REP001"]

    def test_file_level_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            """\
            # repnoqa-file: REP001
            def f(x):
                return x == 1.0 or x == 0.5
            """,
        )
        assert result.ok


class TestEngine:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = lint_paths([str(tmp_path / "broken.py")], root=str(tmp_path))
        assert result.errors and not result.ok

    def test_violations_sorted_and_rendered(self, tmp_path):
        result = run_lint(
            tmp_path,
            "def f(x, a=[]):\n    return x == 1.0\n",
        )
        assert rule_ids(result) == ["REP005", "REP001"]  # line order
        text = render_text(result)
        assert "REP001" in text and "REP005" in text and ":" in text

    def test_json_schema(self, tmp_path):
        result = run_lint(tmp_path, "def f(x):\n    return x == 1.0\n")
        payload = json.loads(render_json(result))
        assert payload["version"] == LINT_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert set(payload["rules"]) == set(RULE_CATALOGUE)
        (violation,) = payload["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "REP001"

    def test_directory_walk_skips_caches(self, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("def f(x):\n    return x == 1.0\n")
        result = lint_paths([str(tmp_path)], root=str(tmp_path))
        assert result.ok and result.files_checked == 1


class TestCLI:
    def test_exit_zero_on_shipped_tree(self):
        # Acceptance criterion: the tree this PR ships lints clean.
        assert analysis_main(["lint", SRC_REPRO]) == 0

    def test_exit_one_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x):\n    return x == 1.0\n")
        assert analysis_main(["lint", str(bad)]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_select_filters_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, a=[]):\n    return x == 1.0\n")
        assert analysis_main(["lint", "--select", "REP005", str(bad)]) == 1
        assert analysis_main(["lint", "--select", "REP002", str(bad)]) == 0

    def test_unknown_rule_id_is_usage_error(self, tmp_path):
        assert analysis_main(["lint", "--select", "REP999", str(tmp_path)]) == 2

    def test_list_rules(self, capsys):
        assert analysis_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_CATALOGUE:
            assert rule_id in out

    def test_default_rules_are_fresh_instances(self):
        first, second = default_rules(), default_rules()
        assert {r.rule_id for r in first} == set(RULE_CATALOGUE)
        assert all(a is not b for a, b in zip(first, second))
