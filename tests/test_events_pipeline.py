"""Tests for the per-packet event engine, connection records, and the
packet pipeline's agreement with the session-granular fast path."""

import pytest

from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
from repro.core.manifest import full_manifest
from repro.core.nids_deployment import plan_deployment
from repro.hashing.keys import Aggregation
from repro.nids.engine import BroInstance, BroMode
from repro.nids.events import EventEngine, EventType
from repro.nids.modules import STANDARD_MODULES
from repro.nids.pipeline import PacketPipeline
from repro.nids.record import ConnState, ConnectionRecord, record_key
from repro.topology import PathSet, internet2
from repro.traffic import (
    FLAG_SYN,
    FiveTuple,
    GeneratorConfig,
    Packet,
    TCP,
    TrafficGenerator,
    merge_packet_streams,
)


@pytest.fixture(scope="module")
def world():
    topo = internet2()
    paths = PathSet(topo)
    generator = TrafficGenerator(
        topo, paths, config=GeneratorConfig(seed=101, scanners_per_node=1)
    )
    sessions = generator.generate(2500)
    return topo, paths, generator, sessions


class TestConnectionRecord:
    def test_orientation(self):
        t = FiveTuple(100, 200, 4000, 80, TCP)
        record = ConnectionRecord(orig=t)
        forward = Packet(t, 0.0, flags=FLAG_SYN, size=40)
        backward = Packet(t.reversed(), 0.01, size=500)
        assert record.is_originator(forward)
        assert not record.is_originator(backward)

    def test_state_machine(self):
        t = FiveTuple(100, 200, 4000, 80, TCP)
        record = ConnectionRecord(orig=t)
        record.update(Packet(t, 0.0, flags=FLAG_SYN, size=40))
        assert record.state is ConnState.ATTEMPT
        assert record.half_open
        record.update(Packet(t.reversed(), 0.01, size=40))
        assert record.state is ConnState.ESTABLISHED
        from repro.traffic import FLAG_FIN, FLAG_ACK

        record.update(Packet(t, 0.02, flags=FLAG_ACK | FLAG_FIN, size=40))
        assert record.state is ConnState.CLOSED

    def test_counters(self):
        t = FiveTuple(1, 2, 10, 80, TCP)
        record = ConnectionRecord(orig=t)
        record.update(Packet(t, 0.0, size=100))
        record.update(Packet(t.reversed(), 0.1, size=200))
        assert record.orig_packets == 1 and record.resp_packets == 1
        assert record.total_bytes == 300
        assert record.first_timestamp == 0.0
        assert record.last_timestamp == 0.1

    def test_hash_fields_match_lazy_computation(self):
        t = FiveTuple(5, 6, 1234, 80, TCP)
        precomputed = ConnectionRecord(orig=t)
        precomputed.compute_hashes(seed=3)
        lazy = ConnectionRecord(orig=t)
        for aggregation in (Aggregation.FLOW, Aggregation.SESSION, Aggregation.SOURCE):
            assert precomputed.hashes[aggregation] == lazy.hash_for(aggregation, seed=3)

    def test_record_key_direction_independent(self):
        t = FiveTuple(9, 2, 10, 80, TCP)
        assert record_key(Packet(t, 0.0)) == record_key(Packet(t.reversed(), 0.1))


class TestEventEngine:
    def _packets(self, sessions, count):
        return merge_packet_streams(sessions[:count])

    def test_one_record_per_session(self, world):
        _, _, _, sessions = world
        packets = self._packets(sessions, 100)
        engine = EventEngine()
        list(engine.run(packets))
        assert engine.num_connections == 100

    def test_new_connection_events(self, world):
        _, _, _, sessions = world
        packets = self._packets(sessions, 50)
        engine = EventEngine()
        events = list(engine.run(packets))
        new_conns = [e for e in events if e.type is EventType.NEW_CONNECTION]
        assert len(new_conns) == 50

    def test_established_only_for_answered(self, world):
        _, _, _, sessions = world
        subset = sessions[:200]
        packets = merge_packet_streams(subset)
        engine = EventEngine()
        events = list(engine.run(packets))
        established = sum(
            1 for e in events if e.type is EventType.CONNECTION_ESTABLISHED
        )
        # TCP sessions that are not half-open always complete the
        # handshake (the template emits the SYN-ACK); UDP sessions are
        # "answered" once a reverse datagram appears (>= 2 packets).
        answered = sum(
            1
            for s in subset
            if (s.tuple.proto == TCP and not s.half_open)
            or (s.tuple.proto != TCP and s.num_packets >= 2)
        )
        assert established == answered

    def test_state_filter_skips(self, world):
        _, _, _, sessions = world
        packets = self._packets(sessions, 80)
        engine = EventEngine(state_filter=lambda pkt: False)
        events = list(engine.run(packets))
        assert events == []
        assert engine.num_connections == 0
        assert engine.packets_skipped == engine.packets_seen

    def test_coordinated_engine_precomputes_hashes(self, world):
        _, _, _, sessions = world
        packets = self._packets(sessions, 10)
        engine = EventEngine(coordinated=True)
        list(engine.run(packets))
        for record in engine.connections.values():
            assert record.hashes  # populated at creation

    def test_finish_flushes_open_connections(self, world):
        _, _, _, sessions = world
        session = next(s for s in sessions if s.half_open)
        engine = EventEngine()
        list(engine.run(session.packets()))
        finished = engine.finish()
        assert len(finished) == 1
        assert finished[0].record.half_open


class TestPipelineVsFastPath:
    """The per-packet reference must agree with the session-level
    engine on detection output."""

    def test_standalone_agreement(self, world):
        topo, _, _, sessions = world
        packets = merge_packet_streams(sessions)

        pipeline = PacketPipeline(topo.node_names, STANDARD_MODULES)
        findings = pipeline.run(packets)

        dispatcher = CoordinatedDispatcher(
            node="standalone",
            manifest=full_manifest("standalone"),
            modules=STANDARD_MODULES,
            resolver=UnitResolver(topo.node_names),
        )
        fast = BroInstance(
            "standalone",
            STANDARD_MODULES,
            BroMode.COORD_EVENT,
            dispatcher=dispatcher,
            run_detectors=True,
        ).process_sessions(sessions)

        fast_scanners = {
            int(a.subject.split(":")[1]) for a in fast.alerts if a.module == "scan"
        }
        fast_flooded = {
            int(a.subject.split(":")[1]) for a in fast.alerts if a.module == "synflood"
        }
        assert findings.scanners == fast_scanners
        assert findings.flooded_destinations == fast_flooded

        fast_signature_sessions = {
            int(a.subject.split(":")[1])
            for a in fast.alerts
            if a.module == "signature"
        }
        by_id = {s.session_id: s for s in sessions}
        fast_signature_tuples = {
            (
                by_id[i].tuple.src,
                by_id[i].tuple.dst,
                by_id[i].tuple.sport,
                by_id[i].tuple.dport,
            )
            for i in fast_signature_sessions
        }
        assert findings.signature_connections == fast_signature_tuples

    def test_coordinated_pipeline_union_equals_standalone(self, world):
        """Distribute the per-packet pipeline across the coordinated
        deployment; the union of findings equals the standalone run."""
        topo, paths, generator, sessions = world
        deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)

        standalone = PacketPipeline(topo.node_names, STANDARD_MODULES).run(
            merge_packet_streams(sessions)
        )

        union_scanners = set()
        union_flooded = set()
        union_signatures = set()
        traces = generator.split_by_node(sessions, transit=True)
        for node, trace in traces.items():
            pipeline = PacketPipeline(
                topo.node_names,
                STANDARD_MODULES,
                manifest=deployment.manifests[node],
            )
            findings = pipeline.run(merge_packet_streams(trace))
            union_scanners |= findings.scanners
            union_flooded |= findings.flooded_destinations
            union_signatures |= findings.signature_connections

        assert union_scanners == standalone.scanners
        assert union_flooded == standalone.flooded_destinations
        assert union_signatures == standalone.signature_connections
