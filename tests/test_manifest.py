"""Tests for sampling-manifest generation (Fig. 2 + redundancy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.manifest import (
    full_manifest,
    generate_manifests,
    sampled_node,
    verify_manifests,
)
from repro.core.nids_lp import solve_nids_lp, uniform_assignment
from repro.core.units import build_units
from repro.hashing.ranges import HashRange, covers_unit_interval
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def setup():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=41))
    sessions = generator.generate(2000)
    units = build_units(STANDARD_MODULES, sessions, paths)
    return topo, units


class TestGeneration:
    def test_invariants_hold(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo)
        manifests = generate_manifests(units, assignment, topo.node_names)
        verify_manifests(units, manifests)  # raises on violation

    def test_assigned_fraction_matches_d(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo)
        manifests = generate_manifests(units, assignment, topo.node_names)
        for unit in units:
            for node in unit.eligible:
                d = assignment.fraction(unit.class_name, unit.key, node)
                held = manifests[node].assigned_fraction(unit.class_name, unit.key)
                assert held == pytest.approx(d, abs=1e-6)

    def test_uniform_assignment_also_valid(self, setup):
        topo, units = setup
        assignment = uniform_assignment(units, topo)
        manifests = generate_manifests(units, assignment, topo.node_names)
        verify_manifests(units, manifests)

    def test_every_node_gets_a_manifest(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo)
        manifests = generate_manifests(units, assignment, topo.node_names)
        assert set(manifests) == set(topo.node_names)

    def test_exactly_one_node_samples_any_hash(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo)
        manifests = generate_manifests(units, assignment, topo.node_names)
        probes = [0.0, 0.1, 0.33, 0.5, 0.77, 0.999]
        for unit in units[:50]:
            for probe in probes:
                holders = sampled_node(unit, manifests, probe)
                assert len(holders) == 1

    def test_inconsistent_fractions_rejected(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo)
        # Zero a substantial fraction so the unit's coverage no longer
        # sums to 1; generation must refuse to build such manifests.
        victim = max(assignment.fractions, key=assignment.fractions.get)
        assignment.fractions = dict(assignment.fractions)
        assignment.fractions[victim] = 0.0
        with pytest.raises(ValueError):
            generate_manifests(units, assignment, topo.node_names)


class TestRedundancy:
    def test_two_fold_coverage(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo, coverage=2.0)
        manifests = generate_manifests(units, assignment, topo.node_names)
        verify_manifests(units, manifests)

    def test_r_distinct_nodes_per_point(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo, coverage=2.0)
        manifests = generate_manifests(units, assignment, topo.node_names)
        probes = [0.05, 0.25, 0.5, 0.75, 0.95]
        for unit in units:
            expected = int(min(2, len(unit.eligible)))
            for probe in probes:
                holders = sampled_node(unit, manifests, probe)
                assert len(holders) == expected
                assert len(set(holders)) == expected  # distinct nodes

    def test_no_node_covers_a_point_twice(self, setup):
        """Redundancy clause (2): wraparound arcs never self-overlap."""
        topo, units = setup
        assignment = solve_nids_lp(units, topo, coverage=3.0)
        manifests = generate_manifests(units, assignment, topo.node_names)
        for unit in units:
            for node in unit.eligible:
                pieces = manifests[node].ranges(unit.class_name, unit.key)
                total = sum(p.length for p in pieces)
                assert total <= 1.0 + 1e-6


class TestFullManifest:
    def test_contains_everything(self):
        manifest = full_manifest("standalone")
        assert manifest.contains("http", ("x",), 0.123)
        assert manifest.responsible("anything", ("y",))
        assert manifest.assigned_fraction("scan", ("z",)) == 1.0

    def test_ranges_cover_unit(self):
        manifest = full_manifest("standalone")
        ranges = manifest.ranges("http", ("x",))
        assert covers_unit_interval(list(ranges), fold=1)


@given(
    fractions=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8
    )
)
@settings(max_examples=150, deadline=None)
def test_property_any_normalized_split_covers(fractions):
    """Any d-vector summing to 1 yields a disjoint exact cover —
    the Fig. 2 invariant independent of the LP."""
    from repro.core.manifest import NodeManifest
    from repro.core.nids_lp import NIDSAssignment
    from repro.core.units import CoordinationUnit

    total = sum(fractions)
    normalized = [f / total for f in fractions]
    nodes = [f"n{i}" for i in range(len(normalized))]
    unit = CoordinationUnit(
        class_name="c",
        key=("k",),
        eligible=tuple(nodes),
        pkts=1.0,
        items=1.0,
        cpu_work=1.0,
        mem_bytes=1.0,
    )
    assignment = NIDSAssignment(
        fractions={("c", ("k",), n): f for n, f in zip(nodes, normalized)},
        cpu_load={},
        mem_load={},
        objective=0.0,
        coverage={("c", ("k",)): 1.0},
        solve_seconds=0.0,
    )
    manifests = generate_manifests([unit], assignment, nodes)
    verify_manifests([unit], manifests)
