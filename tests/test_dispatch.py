"""Tests for the coordinated-NIDS dispatch procedure (Fig. 3)."""

import pytest

from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
from repro.core.manifest import full_manifest
from repro.core.nids_deployment import plan_deployment
from repro.nids.modules import HTTP, SCAN, SIGNATURE, STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def deployment_setup():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=51))
    sessions = generator.generate(2500)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    return topo, generator, sessions, deployment


class TestUnitResolver:
    def test_packet_unit_direction_independent_for_path_scope(
        self, deployment_setup
    ):
        _, generator, sessions, deployment = deployment_setup
        resolver = deployment.resolver
        for session in sessions[:200]:
            for packet in list(session.packets())[:3]:
                unit = resolver.packet_unit(SIGNATURE, packet)
                assert unit == tuple(sorted((session.ingress, session.egress)))

    def test_session_unit_matches_packet_unit_for_path_scope(
        self, deployment_setup
    ):
        _, _, sessions, deployment = deployment_setup
        resolver = deployment.resolver
        session = sessions[0]
        packet = next(iter(session.packets()))
        assert resolver.session_unit(SIGNATURE, session) == resolver.packet_unit(
            SIGNATURE, packet
        )


class TestExactlyOnceAnalysis:
    def test_each_session_analyzed_exactly_once_per_class(self, deployment_setup):
        """The core coverage property: for every (matched session,
        class), exactly one node on the session's path analyzes it."""
        topo, generator, sessions, deployment = deployment_setup
        dispatchers = {n: deployment.dispatcher(n) for n in topo.node_names}
        for session in sessions[:600]:
            path_nodes = list(generator.path_of(session))
            for spec in STANDARD_MODULES:
                if not spec.traffic_filter.matches_session(session):
                    continue
                analyzers = [
                    node
                    for node in path_nodes
                    if dispatchers[node].should_analyze(spec, session)
                ]
                assert len(analyzers) == 1, (
                    f"{spec.name} analyzed {len(analyzers)} times for"
                    f" session {session.session_id}"
                )

    def test_scan_analyzed_at_ingress_only(self, deployment_setup):
        topo, generator, sessions, deployment = deployment_setup
        dispatchers = {n: deployment.dispatcher(n) for n in topo.node_names}
        for session in sessions[:300]:
            for node in generator.path_of(session):
                analyzed = dispatchers[node].should_analyze(SCAN, session)
                assert analyzed == (node == session.ingress)

    def test_redundant_deployment_analyzes_r_times(self):
        topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=52))
        sessions = generator.generate(1200)
        deployment = plan_deployment(
            topo, paths, STANDARD_MODULES, sessions, coverage=2.0
        )
        dispatchers = {n: deployment.dispatcher(n) for n in topo.node_names}
        for session in sessions[:300]:
            path_nodes = list(generator.path_of(session))
            for spec in (SIGNATURE, HTTP):
                if not spec.traffic_filter.matches_session(session):
                    continue
                unit = deployment.resolver.session_unit(spec, session)
                unit_obj = next(
                    u
                    for u in deployment.units
                    if u.class_name == spec.name and u.key == unit
                )
                expected = int(min(2, len(unit_obj.eligible)))
                analyzers = [
                    node
                    for node in path_nodes
                    if dispatchers[node].should_analyze(spec, session)
                ]
                assert len(analyzers) == expected


class TestSamplingFractions:
    def test_empirical_fraction_tracks_assignment(self, deployment_setup):
        """On a large unit, the share of sessions a node samples should
        approximate its assigned d (hash uniformity)."""
        topo, generator, sessions, deployment = deployment_setup
        # Pick the signature unit with the most sessions.
        from collections import Counter

        unit_sessions = Counter()
        for s in sessions:
            unit_sessions[tuple(sorted((s.ingress, s.egress)))] += 1
        key, count = unit_sessions.most_common(1)[0]
        if count < 150:
            pytest.skip("trace too small for a statistical check")
        members = [
            s for s in sessions if tuple(sorted((s.ingress, s.egress))) == key
        ]
        for node, d in deployment.assignment.responsible_nodes("signature", key):
            dispatcher = deployment.dispatcher(node)
            sampled = sum(
                1 for s in members if dispatcher.should_analyze(SIGNATURE, s)
            )
            fraction = sampled / len(members)
            assert fraction == pytest.approx(d, abs=0.12)

    def test_hash_seed_changes_placement(self, deployment_setup):
        """A keyed hash (different administrator seed) relocates
        traffic within the hash space — the anti-evasion defense."""
        topo, generator, sessions, deployment = deployment_setup
        import dataclasses

        other = dataclasses.replace(deployment, hash_seed=99, _shared_hash_cache={})
        node = topo.node_names[0]
        a = deployment.dispatcher(node)
        b = other.dispatcher(node)
        differing = sum(
            1
            for session in sessions[:100]
            if a.session_hash(SIGNATURE, session) != b.session_hash(SIGNATURE, session)
        )
        assert differing == 100


class TestDecisions:
    def test_decide_session_lists_matching_modules(self, deployment_setup):
        _, _, sessions, deployment = deployment_setup
        node = deployment.topology.node_names[0]
        dispatcher = deployment.dispatcher(node)
        session = sessions[0]
        decisions = dispatcher.decide_session(session)
        matched = {
            spec.name
            for spec in STANDARD_MODULES
            if spec.traffic_filter.matches_session(session)
        }
        assert {d.module.name for d in decisions} == matched
        for decision in decisions:
            assert 0.0 <= decision.hash_value < 1.0

    def test_decide_packet_consistent_across_directions(self, deployment_setup):
        """Both directions of a session reach the same analyze decision
        for session-aggregated path-scope classes."""
        _, _, sessions, deployment = deployment_setup
        node = deployment.topology.node_names[5]
        dispatcher = deployment.dispatcher(node)
        session = next(s for s in sessions if s.num_packets >= 4 and not s.half_open)
        packets = list(session.packets())
        forward = next(p for p in packets if p.tuple.src == session.tuple.src)
        backward = next(p for p in packets if p.tuple.src == session.tuple.dst)
        for spec in (SIGNATURE,):
            d_forward = [
                d for d in dispatcher.decide_packet(forward) if d.module is spec
            ]
            d_backward = [
                d for d in dispatcher.decide_packet(backward) if d.module is spec
            ]
            assert d_forward[0].analyze == d_backward[0].analyze

    def test_manifest_node_mismatch_rejected(self, deployment_setup):
        topo, _, _, deployment = deployment_setup
        with pytest.raises(ValueError):
            CoordinatedDispatcher(
                node="STTL",
                manifest=full_manifest("NYCM"),
                modules=STANDARD_MODULES,
                resolver=deployment.resolver,
            )

    def test_full_manifest_analyzes_all_matched(self, deployment_setup):
        topo, _, sessions, deployment = deployment_setup
        dispatcher = CoordinatedDispatcher(
            node="STTL",
            manifest=full_manifest("STTL"),
            modules=STANDARD_MODULES,
            resolver=deployment.resolver,
        )
        for session in sessions[:100]:
            for decision in dispatcher.decide_session(session):
                assert decision.analyze


class TestSharedHashCache:
    def test_shared_cache_matches_cold_cache(self, deployment_setup):
        """Dispatchers sharing the deployment-level hash cache decide
        identically to a dispatcher with a private cold cache."""
        topo, generator, sessions, deployment = deployment_setup
        node = topo.node_names[3]
        shared = deployment.dispatcher(node)  # uses the shared cache
        cold = CoordinatedDispatcher(
            node=node,
            manifest=deployment.manifests[node],
            modules=deployment.modules,
            resolver=deployment.resolver,
            hash_seed=deployment.hash_seed,
        )
        for session in sessions[:150]:
            for spec in deployment.modules:
                assert shared.should_analyze(spec, session) == cold.should_analyze(
                    spec, session
                )
