"""Tests for the simulated Bro instance."""

import pytest

from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
from repro.core.manifest import full_manifest
from repro.nids.engine import BroInstance, BroMode
from repro.nids.modules import HTTP, SCAN, SIGNATURE, STANDARD_MODULES
from repro.nids.resources import CostModel, DEFAULT_COST_MODEL
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def trace():
    topo = internet2()
    generator = TrafficGenerator(
        topo, PathSet(topo), config=GeneratorConfig(seed=61)
    )
    return topo, generator.generate(1500)


def _standalone(topo, modules, mode, run_detectors=False):
    dispatcher = None
    if mode is not BroMode.UNMODIFIED:
        dispatcher = CoordinatedDispatcher(
            node="standalone",
            manifest=full_manifest("standalone"),
            modules=modules,
            resolver=UnitResolver(topo.node_names),
        )
    return BroInstance(
        node="standalone",
        modules=modules,
        mode=mode,
        dispatcher=dispatcher,
        run_detectors=run_detectors,
    )


class TestModes:
    def test_coordinated_requires_dispatcher(self, trace):
        with pytest.raises(ValueError):
            BroInstance("n", STANDARD_MODULES, BroMode.COORD_EVENT)

    def test_unmodified_tracks_everything(self, trace):
        topo, sessions = trace
        report = _standalone(topo, [SIGNATURE], BroMode.UNMODIFIED).process_sessions(
            sessions
        )
        assert report.tracked_connections == len(sessions)

    def test_full_manifest_coordinated_tracks_everything(self, trace):
        topo, sessions = trace
        report = _standalone(topo, [SIGNATURE], BroMode.COORD_EVENT).process_sessions(
            sessions
        )
        assert report.tracked_connections == len(sessions)


class TestOverheadOrdering:
    """Fig. 5's structural relations between the three variants."""

    def _cpu(self, topo, sessions, modules, mode):
        return _standalone(topo, modules, mode).process_sessions(sessions).cpu

    def test_coordination_always_costs_cpu(self, trace):
        topo, sessions = trace
        for modules in ([], [SIGNATURE], [HTTP], [SCAN]):
            unmod = self._cpu(topo, sessions, modules, BroMode.UNMODIFIED)
            policy = self._cpu(topo, sessions, modules, BroMode.COORD_POLICY)
            event = self._cpu(topo, sessions, modules, BroMode.COORD_EVENT)
            assert policy > unmod
            assert event > unmod

    def test_event_checks_cheaper_for_http(self, trace):
        """HTTP's check can be hoisted to the event engine; the hoisted
        variant must be cheaper than interpreted policy checks."""
        topo, sessions = trace
        policy = self._cpu(topo, sessions, [HTTP], BroMode.COORD_POLICY)
        event = self._cpu(topo, sessions, [HTTP], BroMode.COORD_EVENT)
        assert event < policy

    def test_scan_checks_cannot_be_hoisted(self, trace):
        """Scan consumes policy events in both variants; the two
        coordinated costs must be identical."""
        topo, sessions = trace
        policy = self._cpu(topo, sessions, [SCAN], BroMode.COORD_POLICY)
        event = self._cpu(topo, sessions, [SCAN], BroMode.COORD_EVENT)
        assert policy == pytest.approx(event, rel=1e-9)

    def test_signature_checks_identical(self, trace):
        """Signature's check occurs solely in the event engine in both
        variants (paper §2.4)."""
        topo, sessions = trace
        policy = self._cpu(topo, sessions, [SIGNATURE], BroMode.COORD_POLICY)
        event = self._cpu(topo, sessions, [SIGNATURE], BroMode.COORD_EVENT)
        assert policy == pytest.approx(event, rel=1e-9)

    def test_memory_overhead_from_hash_fields(self, trace):
        topo, sessions = trace
        unmod = _standalone(topo, [SIGNATURE], BroMode.UNMODIFIED).process_sessions(
            sessions
        )
        coord = _standalone(topo, [SIGNATURE], BroMode.COORD_EVENT).process_sessions(
            sessions
        )
        extra = coord.mem_bytes - unmod.mem_bytes
        expected = DEFAULT_COST_MODEL.hash_fields_bytes * len(sessions)
        assert extra == pytest.approx(expected)


class TestDetectors:
    def test_standalone_alerts_deterministic(self, trace):
        topo, sessions = trace
        a = _standalone(topo, STANDARD_MODULES, BroMode.UNMODIFIED, run_detectors=True)
        b = _standalone(topo, STANDARD_MODULES, BroMode.UNMODIFIED, run_detectors=True)
        ra = a.process_sessions(sessions)
        rb = b.process_sessions(sessions)
        assert {x.key() for x in ra.alerts} == {x.key() for x in rb.alerts}

    def test_malicious_sessions_produce_alerts(self, trace):
        topo, sessions = trace
        instance = _standalone(
            topo, STANDARD_MODULES, BroMode.UNMODIFIED, run_detectors=True
        )
        report = instance.process_sessions(sessions)
        modules_with_alerts = {alert.module for alert in report.alerts}
        assert "signature" in modules_with_alerts
        assert "scan" in modules_with_alerts

    def test_module_cpu_breakdown_sums(self, trace):
        topo, sessions = trace
        report = _standalone(topo, STANDARD_MODULES, BroMode.UNMODIFIED).process_sessions(
            sessions
        )
        module_total = sum(report.module_cpu.values())
        assert 0 < module_total < report.cpu

    def test_module_items_counted(self, trace):
        topo, sessions = trace
        report = _standalone(topo, STANDARD_MODULES, BroMode.UNMODIFIED).process_sessions(
            sessions
        )
        assert report.module_items["signature"] == len(sessions)
        distinct_sources = len({s.tuple.src for s in sessions})
        assert report.module_items["scan"] == distinct_sources


class TestCostModelInjection:
    def test_custom_cost_model_scales_cpu(self, trace):
        topo, sessions = trace
        cheap = CostModel(capture_cost=0.0, base_conn_packet_cost=0.5)
        default_report = _standalone(topo, [], BroMode.UNMODIFIED).process_sessions(
            sessions
        )
        instance = BroInstance(
            "standalone", [], BroMode.UNMODIFIED, cost_model=cheap
        )
        cheap_report = instance.process_sessions(sessions)
        assert cheap_report.cpu < default_report.cpu
