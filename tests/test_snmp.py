"""Tests for the SNMP link-load substrate and TM estimation."""

import pytest

from repro.measurement.snmp import (
    LinkLoadCollector,
    estimate_traffic_matrix,
    matrix_error,
)
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2()
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=161))
    sessions = generator.generate(6000)
    return topo, paths, generator, sessions


@pytest.fixture(scope="module")
def loads(world):
    _, paths, _, sessions = world
    return LinkLoadCollector(paths).collect(sessions)


class TestLinkLoadCollector:
    def test_only_real_links_counted(self, world, loads):
        topo, _, _, _ = world
        real_links = {
            tuple(sorted((l.a, l.b))) for l in topo.links
        }
        assert set(loads.link_bytes) <= real_links

    def test_ingress_totals_match_truth(self, world, loads):
        _, _, _, sessions = world
        expected = {}
        for s in sessions:
            expected[s.ingress] = expected.get(s.ingress, 0) + s.num_bytes
        assert loads.ingress_bytes == expected

    def test_multi_hop_sessions_count_on_every_link(self, world, loads):
        """Total link bytes equal the sum of bytes x path-link-count."""
        _, paths, _, sessions = world
        expected = sum(
            s.num_bytes * (len(paths.path(s.ingress, s.egress)) - 1)
            for s in sessions
        )
        assert sum(loads.link_bytes.values()) == pytest.approx(expected)

    def test_utilization(self, loads):
        capacities = {link: 1e9 for link in loads.link_bytes}
        utilization = loads.utilization(capacities)
        assert all(0.0 <= u for u in utilization.values())
        assert set(utilization) == set(loads.link_bytes)


class TestTMEstimation:
    def test_estimate_preserves_total(self, world, loads):
        topo, _, _, _ = world
        estimate = estimate_traffic_matrix(topo, loads)
        assert sum(estimate.values()) == pytest.approx(loads.total_ingress_bytes)

    def test_rows_match_ingress_counters(self, world, loads):
        topo, _, _, _ = world
        estimate = estimate_traffic_matrix(topo, loads)
        rows = {}
        for (src, _), volume in estimate.items():
            rows[src] = rows.get(src, 0.0) + volume
        for node, observed in loads.ingress_bytes.items():
            assert rows[node] == pytest.approx(observed)

    def test_estimate_close_to_gravity_truth(self, world, loads):
        """The generator's TM *is* gravity, so the tomogravity-style
        estimate must land close to the true per-pair volumes."""
        topo, _, _, sessions = world
        truth = {}
        for s in sessions:
            truth[(s.ingress, s.egress)] = (
                truth.get((s.ingress, s.egress), 0.0) + s.num_bytes
            )
        estimate = estimate_traffic_matrix(topo, loads)
        assert matrix_error(estimate, truth) < 0.20

    def test_matrix_error_metric(self):
        assert matrix_error({("a", "b"): 1.0}, {("a", "b"): 1.0}) == 0.0
        assert matrix_error({("a", "b"): 0.0}, {("a", "b"): 1.0}) == pytest.approx(1.0)
        assert matrix_error({}, {}) == 0.0
