"""Chunked/streaming traffic generation: one RNG stream, any chunking.

``generate_chunks`` must be a pure re-chunking of the seeded session
stream — no per-chunk reseeding, no drift — so the concatenation is
invariant to chunk size and ``generate`` (which additionally sorts by
start time) is reproduced verbatim.  The streaming emulation entry
points then inherit bit-identical reports from the engine's exact
accounting.
"""

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig, ExecutionPolicy
from repro.nids.modules import STANDARD_MODULES
from repro.obs import MetricsRegistry, use_registry
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def generator():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    return TrafficGenerator(topo, paths, config=GeneratorConfig(seed=31))


class TestChunkStability:
    def test_concat_invariant_across_chunk_sizes(self, generator):
        """The emitted sequence is identical for every chunk size —
        the seeded-RNG stream does not depend on how it is sliced."""
        reference = list(generator.iter_sessions(2000))
        for chunk_size in (1, 7, 97, 1000, 2000, 5000):
            chunks = list(generator.generate_chunks(2000, chunk_size))
            assert all(len(c) <= chunk_size for c in chunks)
            concatenated = [s for chunk in chunks for s in chunk]
            assert concatenated == reference

    def test_sorted_concat_equals_generate(self, generator):
        """generate == stable sort of the streamed sequence; chunking
        never changes what a materializing caller would have seen."""
        materialized = generator.generate(1500)
        streamed = [s for chunk in generator.generate_chunks(1500, 256) for s in chunk]
        assert sorted(streamed, key=lambda s: s.start_time) == materialized

    def test_same_seed_same_stream(self, generator):
        """Two generators with the same config emit the same chunks."""
        topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
        other = TrafficGenerator(
            topo, PathSet(topo), config=GeneratorConfig(seed=31)
        )
        assert list(generator.generate_chunks(800, 129)) == list(
            other.generate_chunks(800, 129)
        )

    def test_exact_session_budget(self, generator):
        """Chunking emits exactly num_sessions sessions, ids 0..n-1."""
        streamed = [s for chunk in generator.generate_chunks(1003, 100) for s in chunk]
        assert len(streamed) == 1003
        assert sorted(s.session_id for s in streamed) == list(range(1003))

    def test_invalid_chunk_size_rejected(self, generator):
        with pytest.raises(ValueError):
            next(generator.generate_chunks(10, 0))

    def test_stream_counters_recorded(self, generator):
        registry = MetricsRegistry()
        with use_registry(registry):
            chunks = list(generator.generate_chunks(250, 64))
        assert registry.counter("traffic_chunks_generated_total").value() == len(
            chunks
        )
        assert registry.counter("traffic_sessions_streamed_total").value() == 250


class TestStreamingEmulation:
    @pytest.fixture(scope="class")
    def deployment(self, generator):
        sessions = generator.generate(3000)
        return (
            plan_deployment(
                generator.topology, generator.paths, STANDARD_MODULES, sessions
            ),
            sessions,
        )

    def test_coordinated_stream_bit_identical(self, generator, deployment):
        """Streaming chunks through persistent per-node instances and
        merging partials equals the materialize-all run exactly —
        order independence of the exact accounting, end to end."""
        plan, sessions = deployment
        materialized = run_emulation(
            Traffic.materialized(generator, sessions), plan, config=EmulationConfig()
        )
        streaming = EmulationConfig(policy=ExecutionPolicy.streamed())
        for chunk_size in (257, 1024, 5000):
            streamed = run_emulation(
                Traffic.chunked(
                    generator, generator.generate_chunks(3000, chunk_size)
                ),
                plan,
                config=streaming,
            )
            assert streamed.to_dict()["reports"] == materialized.to_dict()["reports"]

    def test_edge_stream_bit_identical(self, generator, deployment):
        _, sessions = deployment
        materialized = run_emulation(
            Traffic.materialized(generator, sessions),
            STANDARD_MODULES,
            config=EmulationConfig(),
        )
        streamed = run_emulation(
            Traffic.chunked(generator, generator.generate_chunks(3000, 512)),
            STANDARD_MODULES,
            config=EmulationConfig(policy=ExecutionPolicy.streamed()),
        )
        assert streamed.to_dict()["reports"] == materialized.to_dict()["reports"]

    def test_generated_traffic_streams_by_policy_chunk_size(self, generator, deployment):
        """``Traffic.generate`` + a streamed policy chunks by the
        policy's ``chunk_size`` — no pre-materialized list anywhere."""
        plan, sessions = deployment
        materialized = run_emulation(
            Traffic.materialized(generator, sessions), plan, config=EmulationConfig()
        )
        streamed = run_emulation(
            Traffic.generate(generator, 3000),
            plan,
            config=EmulationConfig(policy=ExecutionPolicy.streamed(chunk_size=999)),
        )
        assert streamed.to_dict()["reports"] == materialized.to_dict()["reports"]

    def test_stream_chunk_counter(self, generator, deployment):
        plan, _ = deployment
        registry = MetricsRegistry()
        run_emulation(
            Traffic.chunked(generator, generator.generate_chunks(1000, 250)),
            plan,
            config=EmulationConfig(policy=ExecutionPolicy.streamed()),
            registry=registry,
        )
        assert registry.counter("engine_stream_chunks_total").value() == 4
