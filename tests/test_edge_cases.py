"""Edge-case and robustness tests across the library."""

import pytest

from repro.core.manifest import generate_manifests, verify_manifests
from repro.core.nids_lp import (
    integral_assignment,
    solve_nids_lp,
    uniform_assignment,
)
from repro.core.units import build_units
from repro.nids.engine import BroInstance, BroMode
from repro.nids.modules import SIGNATURE, STANDARD_MODULES
from repro.topology import LinkSpec, NodeSpec, PathSet, Topology, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=171))
    return topo, paths, generator


class TestEmptyInputs:
    def test_lp_with_no_units(self, world):
        topo, _, _ = world
        assignment = solve_nids_lp([], topo)
        assert assignment.objective == pytest.approx(0.0)
        assert assignment.fractions == {}

    def test_manifests_with_no_units(self, world):
        topo, _, _ = world
        assignment = solve_nids_lp([], topo)
        manifests = generate_manifests([], assignment, topo.node_names)
        verify_manifests([], manifests)
        assert all(m.num_entries == 0 for m in manifests.values())

    def test_engine_with_empty_trace(self, world):
        report = BroInstance("n", STANDARD_MODULES, BroMode.UNMODIFIED).process_sessions(
            []
        )
        assert report.cpu == 0.0
        assert report.tracked_connections == 0

    def test_units_from_empty_trace(self, world):
        _, paths, _ = world
        assert build_units(STANDARD_MODULES, [], paths) == []

    def test_generator_zero_sessions(self, world):
        _, _, generator = world
        assert generator.generate(0) == []


class TestTinyTopologies:
    def test_two_node_network_end_to_end(self):
        topo = Topology(
            "pair",
            [NodeSpec("a", population=1.0), NodeSpec("b", population=2.0)],
            [LinkSpec("a", "b", 10.0)],
        ).set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=1))
        sessions = generator.generate(200)
        units = build_units(STANDARD_MODULES, sessions, paths)
        assignment = solve_nids_lp(units, topo)
        manifests = generate_manifests(units, assignment, topo.node_names)
        verify_manifests(units, manifests)

    def test_single_session(self, world):
        topo, paths, generator = world
        sessions = generator.generate(1)
        units = build_units(STANDARD_MODULES, sessions, paths)
        assert units
        assignment = solve_nids_lp(units, topo)
        verify_manifests(
            units, generate_manifests(units, assignment, topo.node_names)
        )


class TestIntegralAssignment:
    def test_whole_units_only(self, world):
        topo, paths, generator = world
        sessions = generator.generate(800)
        units = build_units(STANDARD_MODULES, sessions, paths)
        integral = integral_assignment(units, topo)
        for value in integral.fractions.values():
            assert value == 1.0
        for unit in units:
            holders = [
                node
                for node in unit.eligible
                if integral.fraction(unit.class_name, unit.key, node) > 0
            ]
            assert len(holders) == 1

    def test_never_beats_lp(self, world):
        topo, paths, generator = world
        sessions = generator.generate(800)
        units = build_units(STANDARD_MODULES, sessions, paths)
        lp = solve_nids_lp(units, topo)
        integral = integral_assignment(units, topo)
        assert lp.objective <= integral.objective + 1e-9

    def test_beats_uniform_on_skew(self, world):
        """Least-loaded-first should beat the blind even split."""
        topo, paths, generator = world
        sessions = generator.generate(800)
        units = build_units(STANDARD_MODULES, sessions, paths)
        integral = integral_assignment(units, topo)
        naive = uniform_assignment(units, topo)
        assert integral.objective <= naive.objective * 1.05

    def test_manifests_from_integral_assignment(self, world):
        topo, paths, generator = world
        sessions = generator.generate(400)
        units = build_units(STANDARD_MODULES, sessions, paths)
        integral = integral_assignment(units, topo)
        manifests = generate_manifests(units, integral, topo.node_names)
        verify_manifests(units, manifests)


class TestDegenerateTraffic:
    def test_single_protocol_trace(self, world):
        """A trace matching only one module still plans cleanly."""
        topo, paths, generator = world
        from repro.traffic.profiles import TrafficProfile

        dns_only = TrafficProfile("dns-only", {"dns": 1.0})
        gen = TrafficGenerator(
            topo, paths, profile=dns_only, config=GeneratorConfig(seed=2)
        )
        sessions = gen.generate(300)
        units = build_units(STANDARD_MODULES, sessions, paths)
        class_names = {u.class_name for u in units}
        # Only all-traffic modules and scan see DNS.
        assert "http" not in class_names
        assert "signature" in class_names and "scan" in class_names
        assignment = solve_nids_lp(units, topo)
        assert assignment.objective > 0
