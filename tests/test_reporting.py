"""Tests for the CSV artifact writers and the figures CLI command."""

import csv
import io

import pytest

from repro import reporting
from repro.cli import main
from repro.experiments import fig8_per_node_profile
from repro.nids.emulation import ComparisonRow
from repro.nids.microbench import run_microbenchmark


def _parse(text: str):
    return list(csv.reader(io.StringIO(text)))


class TestComparisonCSV:
    def test_rows_and_header(self):
        rows = [
            ComparisonRow(
                x=8, edge_cpu=100.0, coord_cpu=60.0, edge_mem_mb=40.0, coord_mem_mb=35.0
            ),
            ComparisonRow(
                x=21, edge_cpu=200.0, coord_cpu=90.0, edge_mem_mb=50.0, coord_mem_mb=40.0
            ),
        ]
        parsed = _parse(reporting.to_string(reporting.comparison_csv, rows, "modules"))
        assert parsed[0][0] == "modules"
        assert len(parsed) == 3
        assert float(parsed[1][1]) == 100.0
        assert float(parsed[2][3]) == pytest.approx(1 - 90.0 / 200.0)


class TestMicrobenchCSV:
    def test_all_modules_emitted(self):
        rows = run_microbenchmark(num_sessions=1200, runs=1)
        parsed = _parse(reporting.to_string(reporting.microbench_csv, rows))
        modules = {row[0] for row in parsed[1:]}
        assert "baseline" in modules and "signature" in modules
        assert len(parsed) == len(rows) + 1


class TestPerNodeCSV:
    def test_eleven_nodes(self):
        profile = fig8_per_node_profile(sessions_total=1200, seed=9)
        parsed = _parse(reporting.to_string(reporting.per_node_csv, profile))
        assert len(parsed) == 12  # header + 11 nodes
        assert parsed[11][1] == "NYCM"


class TestFiguresCommand:
    def test_writes_selected_csvs(self, tmp_path, capsys):
        code = main(
            [
                "figures",
                "--output-dir",
                str(tmp_path),
                "--only",
                "fig8",
                "--sessions",
                "1000",
            ]
        )
        assert code == 0
        produced = sorted(p.name for p in tmp_path.iterdir())
        assert produced == ["fig8_per_node.csv"]
        content = (tmp_path / "fig8_per_node.csv").read_text()
        assert "NYCM" in content

    def test_fig11_csv(self, tmp_path):
        code = main(
            [
                "figures",
                "--output-dir",
                str(tmp_path),
                "--only",
                "fig11",
                "--epochs",
                "20",
                "--runs",
                "1",
            ]
        )
        assert code == 0
        parsed = _parse((tmp_path / "fig11_regret.csv").read_text())
        assert parsed[0] == ["run", "epoch", "normalized_regret"]
        assert len(parsed) > 2


class TestRoundingCSV:
    def test_rows(self):
        from repro.core.rounding import RoundingVariant
        from repro.experiments.nips_rounding import RoundingStats

        stats = [
            RoundingStats(
                topology="Abilene",
                capacity_fraction=0.1,
                variant=RoundingVariant.GREEDY_LP,
                mean=0.97,
                minimum=0.96,
                maximum=0.99,
            )
        ]
        parsed = _parse(reporting.to_string(reporting.rounding_csv, stats))
        assert parsed[0][0] == "topology"
        assert parsed[1][2] == "round+greedy+lp"
        assert float(parsed[1][3]) == pytest.approx(0.97)


class TestRegretCSV:
    def test_rows(self):
        from repro.core.online import OnlineRunResult, RegretPoint
        from repro.experiments.online_adaptation import OnlineEvaluation

        evaluation = OnlineEvaluation(
            runs=[
                OnlineRunResult(
                    points=[
                        RegretPoint(epoch=10, fpl_total=90.0, static_total=100.0)
                    ],
                    final_regret=0.1,
                )
            ]
        )
        parsed = _parse(reporting.to_string(reporting.regret_csv, evaluation))
        assert parsed[1] == ["1", "10", "0.09999999999999998"] or float(
            parsed[1][2]
        ) == pytest.approx(0.1)


class TestReportProtocol:
    """The Report.write interface the legacy ``*_csv`` wrappers sit on."""

    def _rows(self):
        return [
            ComparisonRow(
                x=8, edge_cpu=100.0, coord_cpu=60.0, edge_mem_mb=40.0, coord_mem_mb=35.0
            )
        ]

    def test_csv_matches_legacy_wrapper(self):
        rows = self._rows()
        report = reporting.ComparisonReport(rows, "modules")
        assert report.to_string("csv") == reporting.to_string(
            reporting.comparison_csv, rows, "modules"
        )

    def test_json_envelope(self):
        import json

        report = reporting.ComparisonReport(self._rows(), "modules")
        payload = json.loads(report.to_string("json"))
        assert payload["name"] == "comparison"
        assert payload["header"][0] == "modules"
        assert len(payload["rows"]) == 1
        assert payload["rows"][0][1] == 100.0

    def test_default_format_is_first_of_formats(self):
        report = reporting.ComparisonReport(self._rows(), "modules")
        assert report.formats()[0] == "csv"
        assert report.to_string() == report.to_string("csv")

    def test_unknown_format_raises(self):
        report = reporting.ComparisonReport(self._rows(), "modules")
        with pytest.raises(ValueError, match="comparison"):
            report.to_string("yaml")

    def test_every_report_class_names_are_distinct(self):
        names = {
            cls.name
            for cls in (
                reporting.ComparisonReport,
                reporting.PerNodeReport,
                reporting.MicrobenchReport,
                reporting.RoundingReport,
                reporting.RegretReport,
                reporting.ControlEpochsReport,
                reporting.MetricsSnapshotReport,
            )
        }
        assert len(names) == 7

    def test_control_epochs_report_matches_wrapper(self):
        from repro.control import ScenarioConfig, run_scenario

        result = run_scenario(
            ScenarioConfig(epochs=4, base_sessions=200, seed=5)
        )
        report = reporting.ControlEpochsReport(result.records)
        assert report.to_string("csv") == reporting.to_string(
            reporting.control_epochs_csv, result.records
        )
        parsed = _parse(report.to_string("csv"))
        assert len(parsed) == 5  # header + 4 epochs
