"""Tests for online adaptation (FPL, Section 3.5)."""

import random

import pytest

from repro.core.nips_milp import build_nips_problem
from repro.core.online import (
    FPLAdapter,
    FPLConfig,
    decision_value,
    run_online_adaptation,
    solve_best_response,
    state_vector,
    theoretical_epsilon,
)
from repro.experiments.online_adaptation import build_online_problem
from repro.nips.adversary import (
    EvasiveAdversary,
    ShiftingHotspotProcess,
    UniformProcess,
)


@pytest.fixture(scope="module")
def problem():
    return build_online_problem(num_rules=3, seed=1)


class TestStateVector:
    def test_components_match_formula(self, problem):
        rates = {(0, problem.pairs[0]): 0.01}
        state = state_vector(problem, rates)
        pair = problem.pairs[0]
        for node in problem.paths[pair].nodes:
            expected = problem.items[pair] * 0.01 * problem.dist[pair][node]
            assert state[(0, pair, node)] == pytest.approx(expected)

    def test_zero_rates_empty_state(self, problem):
        assert state_vector(problem, {}) == {}

    def test_decision_value_dot_product(self, problem):
        state = {("k",): 2.0}
        assert decision_value({"a": 2.0}, {"a": 3.0}) == pytest.approx(6.0)


class TestBestResponse:
    def test_solution_in_polytope(self, problem):
        rates = {
            (rule.index, pair): 0.005
            for rule in problem.rules
            for pair in problem.pairs
        }
        weights = state_vector(problem, rates)
        decision = solve_best_response(problem, weights)
        # Check Eq. 11 and capacities via the problem's checker with
        # all rules enabled (no TCAM constraint online).
        e = {
            (rule.index, node): 1
            for rule in problem.rules
            for node in problem.topology.node_names
        }
        violations = [
            v for v in problem.check_feasible(e, decision) if "TCAM" not in v
        ]
        assert violations == []

    def test_prefers_high_weight_components(self, problem):
        pair = problem.pairs[0]
        nodes = problem.paths[pair].nodes
        weights = {(0, pair, nodes[0]): 100.0, (0, pair, nodes[-1]): 1.0}
        decision = solve_best_response(problem, weights)
        assert decision.get((0, pair, nodes[0]), 0.0) >= decision.get(
            (0, pair, nodes[-1]), 0.0
        )

    def test_nonpositive_weights_dropped(self, problem):
        weights = {(0, problem.pairs[0], problem.paths[problem.pairs[0]].nodes[0]): 0.0}
        assert solve_best_response(problem, weights) == {}


class TestFPLAdapter:
    def test_theoretical_epsilon_positive(self, problem):
        assert theoretical_epsilon(problem, FPLConfig(epochs=100)) > 0

    def test_decide_advances_clock(self, problem):
        adapter = FPLAdapter(problem, FPLConfig(epochs=10, perturbation_scale=1e6))
        adapter.decide()
        assert adapter.t == 1
        adapter.observe({(0, problem.pairs[0]): 0.01})
        adapter.decide()
        assert adapter.t == 2

    def test_explicit_epsilon_respected(self, problem):
        adapter = FPLAdapter(problem, FPLConfig(epochs=10, epsilon=0.5))
        assert adapter.epsilon == 0.5

    def test_decisions_feasible_every_epoch(self, problem):
        adapter = FPLAdapter(problem, FPLConfig(epochs=5, perturbation_scale=1e6))
        process = UniformProcess(problem, seed=3)
        e = {
            (rule.index, node): 1
            for rule in problem.rules
            for node in problem.topology.node_names
        }
        for epoch in range(1, 4):
            decision = adapter.decide()
            violations = [
                v for v in problem.check_feasible(e, decision) if "TCAM" not in v
            ]
            assert violations == []
            adapter.observe(process(epoch, None))


class TestRegret:
    def test_regret_small_against_iid_uniform(self, problem):
        """Fig. 11's headline: regret within 15% of the best static
        solution in hindsight, trending toward zero."""
        process = UniformProcess(problem, seed=5)
        result = run_online_adaptation(
            problem,
            process,
            FPLConfig(epochs=40, perturbation_scale=1e6, seed=1),
            report_every=10,
        )
        assert result.final_regret <= 0.15
        regrets = [p.normalized_regret for p in result.points]
        assert regrets[-1] <= regrets[0] + 0.02  # non-increasing trend

    def test_points_accumulate(self, problem):
        process = UniformProcess(problem, seed=6)
        result = run_online_adaptation(
            problem,
            process,
            FPLConfig(epochs=20, perturbation_scale=1e6, seed=2),
            report_every=5,
        )
        epochs = [p.epoch for p in result.points]
        assert epochs == [5, 10, 15, 20]
        totals = [p.fpl_total for p in result.points]
        assert totals == sorted(totals)


class TestAdversaries:
    def test_uniform_rates_in_range(self, problem):
        process = UniformProcess(problem, seed=0, high=0.01)
        rates = process(1, None)
        assert len(rates) == len(problem.pairs) * problem.num_rules
        assert all(0.0 <= r <= 0.01 for r in rates.values())

    def test_shifting_hotspot_changes_phase(self, problem):
        process = ShiftingHotspotProcess(problem, seed=1, period=10, hot_count=3)
        early = process(1, None)
        late = process(25, None)
        hot_early = {k for k, v in early.items() if v > 0.01}
        hot_late = {k for k, v in late.items() if v > 0.01}
        assert len(hot_early) == 3
        assert hot_early != hot_late

    def test_evasive_adversary_targets_gap(self, problem):
        adversary = EvasiveAdversary(problem, seed=2, budget_rate=0.01)
        pair = problem.pairs[0]
        covered_decision = {
            (rule.index, p, problem.paths[p].nodes[0]): 1.0
            for rule in problem.rules
            for p in problem.pairs
            if p != pair or rule.index != 0
        }
        rates = adversary(2, covered_decision)
        hot = [k for k, v in rates.items() if v > 0]
        assert hot == [(0, pair)]

    def test_evasive_first_epoch_random_target(self, problem):
        adversary = EvasiveAdversary(problem, seed=3)
        rates = adversary(1, None)
        assert sum(1 for v in rates.values() if v > 0) == 1
