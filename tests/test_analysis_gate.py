"""Controller pre-distribution gate: corrupted configurations are
refused fail-closed, counted per violated invariant, and never pushed.

The acceptance scenario for the static-analysis subsystem: hand the
controller a manifest set with overlapping ranges (REP102) or off-path
mass (REP104) and prove (a) the previous configuration stays active,
(b) nothing reaches the wire, and (c) the
``controller_manifest_rejections_total{rule}`` counter attributes the
refusal to the right invariant.
"""

import pytest

from repro.control.bus import Bus, BusConfig
from repro.control.controller import Controller, ControllerConfig
from repro.core.manifest import generate_manifests
from repro.hashing.ranges import HashRange
from repro.measurement import FlowExporter
from repro.nids.modules import module_set
from repro.obs import MetricsRegistry
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator

REJECTIONS = "controller_manifest_rejections_total"


@pytest.fixture()
def world():
    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology, paths, config=GeneratorConfig(seed=9)
    )
    sessions = generator.generate(400)
    registry = MetricsRegistry()
    controller = Controller(
        topology,
        paths,
        module_set(8),
        Bus(BusConfig(latency=0.0)),
        # No agents answer in these tests; keep silent nodes alive
        # across the multi-epoch retry sequence.
        config=ControllerConfig(heartbeat_timeout=100.0),
        registry=registry,
    )
    controller.reports["netflow"] = FlowExporter(
        sampling_rate=1.0, seed=9
    ).measure(sessions)
    return controller, registry


def overlapping_generate(units, assignment, node_names):
    """Real generation, then duplicate one node's range (REP102)."""
    manifests = generate_manifests(units, assignment, node_names)
    for node in node_names:
        for ident, pieces in manifests[node].entries.items():
            if pieces and pieces[0].length > 0.05:
                manifests[node].entries[ident] = pieces + (
                    HashRange(pieces[0].lo, pieces[0].hi),
                )
                return manifests
    raise AssertionError("no entry large enough to corrupt")


def off_path_generate(units, assignment, node_names):
    """Real generation, then park mass on a node off the unit's path
    (REP104)."""
    manifests = generate_manifests(units, assignment, node_names)
    for unit in units:
        strangers = [n for n in node_names if n not in unit.eligible]
        if strangers:
            manifests[strangers[0]].entries[unit.ident] = (
                HashRange(0.0, 0.25),
            )
            return manifests
    raise AssertionError("every unit is eligible everywhere")


class TestGateRejects:
    def test_overlapping_ranges_rejected_and_counted(self, world, monkeypatch):
        controller, registry = world
        monkeypatch.setattr(
            "repro.control.controller.generate_manifests",
            overlapping_generate,
        )
        controller.step(0.25)
        assert controller.version == -1  # nothing adopted
        assert controller.deployment is None
        assert controller.manifests == {}
        assert controller.stats.rejections == 1
        assert controller.stats.resolves == 0
        assert controller.bus.stats.sent == 0  # fail-closed: no pushes
        assert registry.get(REJECTIONS).value(rule="REP102") >= 1

    def test_off_path_mass_rejected_and_counted(self, world, monkeypatch):
        controller, registry = world
        monkeypatch.setattr(
            "repro.control.controller.generate_manifests", off_path_generate
        )
        controller.step(0.25)
        assert controller.version == -1
        assert controller.stats.rejections == 1
        assert controller.bus.stats.sent == 0
        assert registry.get(REJECTIONS).value(rule="REP104") >= 1

    def test_recovers_once_generation_is_healthy_again(
        self, world, monkeypatch
    ):
        controller, registry = world
        monkeypatch.setattr(
            "repro.control.controller.generate_manifests",
            overlapping_generate,
        )
        controller.step(0.25)
        controller.step(1.25)  # still corrupted: rejected again
        assert controller.version == -1
        assert controller.stats.rejections == 2
        monkeypatch.undo()
        controller.step(2.25)
        assert controller.version == 0  # healthy plan adopted
        assert controller.stats.resolves == 1
        assert controller.deployment is not None
        assert controller.bus.stats.sent > 0  # pushes flow again
        assert controller.stats.rejections == 2  # no new rejections


class TestGatePasses:
    def test_valid_bootstrap_unaffected(self, world):
        controller, registry = world
        controller.step(0.25)
        assert controller.version == 0
        assert controller.stats.rejections == 0
        assert controller.stats.resolves == 1
        metric = registry.get(REJECTIONS)
        assert metric is not None  # pre-declared so 0 != absent
        assert metric.value(rule="REP102") == 0
