"""Tests for the extended module catalog."""

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig
from repro.nids.modules import (
    EXTENDED_MODULES,
    STANDARD_MODULES,
    make_detector,
)
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator
from repro.traffic.profiles import TrafficProfile


@pytest.fixture(scope="module")
def world():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=201))
    sessions = generator.generate(2000)
    return topo, paths, generator, sessions


class TestCatalog:
    def test_detectors_registered(self):
        for spec in EXTENDED_MODULES:
            detector = make_detector(spec)
            assert detector.spec is spec

    def test_names_unique_vs_standard(self):
        names = {m.name for m in STANDARD_MODULES} | {
            m.name for m in EXTENDED_MODULES
        }
        assert len(names) == len(STANDARD_MODULES) + len(EXTENDED_MODULES)


class TestPlanningWithExtendedSet(object):
    def test_full_pipeline_with_extended_modules(self, world):
        topo, paths, generator, sessions = world
        modules = list(STANDARD_MODULES) + list(EXTENDED_MODULES)
        deployment = plan_deployment(topo, paths, modules, sessions)
        traffic = Traffic.materialized(generator, sessions)
        edge = run_emulation(traffic, modules)
        coord = run_emulation(traffic, deployment)
        assert coord.max_cpu < edge.max_cpu

    def test_smtp_units_exist(self, world):
        topo, paths, generator, sessions = world
        modules = list(STANDARD_MODULES) + list(EXTENDED_MODULES)
        deployment = plan_deployment(topo, paths, modules, sessions)
        class_names = {u.class_name for u in deployment.units}
        assert "smtp" in class_names  # mixed profile carries SMTP
        assert "dnstunnel" in class_names  # and DNS

    def test_detection_equivalence_extended(self, world):
        """Functional equivalence holds with the extended set too."""
        topo, paths, generator, sessions = world
        from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
        from repro.core.manifest import full_manifest
        from repro.nids.engine import BroInstance, BroMode

        modules = list(STANDARD_MODULES) + list(EXTENDED_MODULES)
        detect = EmulationConfig(run_detectors=True)
        standalone = BroInstance(
            "standalone", modules, BroMode.UNMODIFIED, config=detect
        ).process_sessions(sessions)
        deployment = plan_deployment(topo, paths, modules, sessions)
        coord = run_emulation(
            Traffic.materialized(generator, sessions), deployment, config=detect
        )
        assert coord.alert_keys() == {a.key() for a in standalone.alerts}


class TestExtendedDetectorBehaviour:
    def _sessions(self, app, count, src=None):
        from repro.traffic.packet import FiveTuple, TCP, UDP
        from repro.traffic.session import Session

        port = {"smtp": 25, "dnstunnel": 53, "sshbrute": 22, "ftp": 21}[app]
        proto = UDP if app == "dnstunnel" else TCP
        return [
            Session(
                session_id=i,
                tuple=FiveTuple(src or 1000, 2000 + i, 40000 + i, port, proto),
                app=app,
                ingress="a",
                egress="b",
                start_time=float(i),
                num_packets=4,
                num_bytes=400,
            )
            for i in range(count)
        ]

    def test_smtp_spam_burst_alert(self):
        from repro.nids.modules import SMTPAnalyzer
        from repro.nids.modules.extended import SMTP

        detector = SMTPAnalyzer(SMTP)
        for session in self._sessions("smtp", SMTPAnalyzer.SPAM_THRESHOLD):
            detector.on_session(session)
        assert len(detector.alerts) == 1
        assert detector.alerts[0].subject == "src:1000"

    def test_smtp_below_threshold_silent(self):
        from repro.nids.modules import SMTPAnalyzer
        from repro.nids.modules.extended import SMTP

        detector = SMTPAnalyzer(SMTP)
        for session in self._sessions("smtp", SMTPAnalyzer.SPAM_THRESHOLD - 1):
            detector.on_session(session)
        assert detector.alerts == []

    def test_dns_tunnel_query_volume(self):
        from repro.nids.modules import DNSTunnelDetector
        from repro.nids.modules.extended import DNS_TUNNEL

        detector = DNSTunnelDetector(DNS_TUNNEL)
        # 4 packets per session => ~2 queries each; threshold 40 => 20 sessions.
        for session in self._sessions("dnstunnel", 20):
            detector.on_session(session)
        assert len(detector.alerts) == 1

    def test_ssh_brute_short_attempts_only(self):
        from repro.nids.modules import SSHBruteDetector
        from repro.nids.modules.extended import SSH_BRUTE
        import dataclasses

        detector = SSHBruteDetector(SSH_BRUTE)
        long_sessions = [
            dataclasses.replace(s, num_packets=50)
            for s in self._sessions("sshbrute", SSHBruteDetector.ATTEMPT_THRESHOLD)
        ]
        for session in long_sessions:
            detector.on_session(session)
        assert detector.alerts == []  # interactive sessions ignored
        for session in self._sessions("sshbrute", SSHBruteDetector.ATTEMPT_THRESHOLD):
            detector.on_session(session)
        assert len(detector.alerts) == 1

    def test_ftp_counts_sessions(self):
        from repro.nids.modules import FTPAnalyzer
        from repro.nids.modules.extended import FTP

        detector = FTPAnalyzer(FTP)
        for session in self._sessions("ftp", 7):
            detector.on_session(session)
        assert detector.sessions_seen == 7
        assert detector.alerts == []
