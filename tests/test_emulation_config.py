"""EmulationConfig, deprecation shims, registry wiring, and the api facade."""

import warnings

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.nids.emulation import (
    Traffic,
    compare_deployments,
    emulate_coordinated,  # repnoqa: REP006 -- deprecation path under test
    emulate_edge,  # repnoqa: REP006 -- deprecation path under test
    run_emulation,
)
from repro.nids.engine import BroInstance, BroMode, EmulationConfig
from repro.nids.modules import STANDARD_MODULES, module_set
from repro.nids.resources import DEFAULT_COST_MODEL
from repro.obs import MetricsRegistry, NULL_REGISTRY
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topology = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topology)
    generator = TrafficGenerator(topology, paths, config=GeneratorConfig(seed=11))
    sessions = generator.generate(700)
    modules = module_set(8)
    deployment = plan_deployment(topology, paths, modules, sessions)
    return generator, sessions, modules, deployment


class TestEmulationConfig:
    def test_defaults(self):
        config = EmulationConfig()
        assert config.mode is BroMode.COORD_EVENT
        assert config.cost_model is DEFAULT_COST_MODEL
        assert config.run_detectors is False
        assert config.fine_grained is False
        assert config.batch_dispatch is True
        assert config.registry is NULL_REGISTRY

    def test_frozen(self):
        with pytest.raises(Exception):
            EmulationConfig().run_detectors = True

    def test_instance_adopts_config(self):
        config = EmulationConfig(run_detectors=True, batch_dispatch=False)
        instance = BroInstance(
            node="NYCM",
            modules=STANDARD_MODULES[:2],
            mode=BroMode.UNMODIFIED,
            config=config,
        )
        assert instance.config is config
        assert instance.batch_dispatch is False
        assert instance.registry is NULL_REGISTRY


class TestDeprecationShims:
    def test_legacy_kwargs_warn_and_still_work(self, world):
        generator, sessions, modules, _ = world
        with pytest.warns(DeprecationWarning, match="cost_model"):
            usage = emulate_edge(generator, sessions, modules, cost_model=DEFAULT_COST_MODEL)  # repnoqa: REP006
        assert usage.reports

    def test_wrapper_entrypoints_warn(self, world):
        generator, sessions, modules, deployment = world
        with pytest.warns(DeprecationWarning, match="emulate_edge is deprecated"):
            emulate_edge(generator, sessions, modules)  # repnoqa: REP006
        with pytest.warns(
            DeprecationWarning, match="emulate_coordinated is deprecated"
        ):
            emulate_coordinated(deployment, generator, sessions)  # repnoqa: REP006

    def test_wrappers_match_run_emulation_exactly(self, world):
        generator, sessions, modules, deployment = world
        traffic = Traffic.materialized(generator, sessions)
        with pytest.warns(DeprecationWarning):
            legacy_edge = emulate_edge(generator, sessions, modules)  # repnoqa: REP006
        with pytest.warns(DeprecationWarning):
            legacy_coord = emulate_coordinated(deployment, generator, sessions)  # repnoqa: REP006
        assert legacy_edge.to_dict() == run_emulation(traffic, modules).to_dict()
        assert (
            legacy_coord.to_dict() == run_emulation(traffic, deployment).to_dict()
        )

    def test_legacy_kwargs_on_coordinated(self, world):
        generator, sessions, _, deployment = world
        with pytest.warns(DeprecationWarning, match="batch_dispatch"):
            usage = emulate_coordinated(  # repnoqa: REP006
                deployment, generator, sessions, batch_dispatch=False
            )
        assert usage.reports

    def test_legacy_kwargs_on_instance(self):
        with pytest.warns(DeprecationWarning, match="run_detectors"):
            instance = BroInstance(
                node="NYCM",
                modules=STANDARD_MODULES[:2],
                mode=BroMode.UNMODIFIED,
                run_detectors=True,  # repnoqa: REP006
            )
        assert instance.config.run_detectors is True

    def test_run_emulation_does_not_warn(self, world):
        generator, sessions, modules, _ = world
        traffic = Traffic.materialized(generator, sessions)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_emulation(traffic, modules, config=EmulationConfig())

    def test_mixing_config_and_legacy_raises(self, world):
        generator, sessions, modules, _ = world
        with pytest.raises(TypeError, match="not both"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            emulate_edge(  # repnoqa: REP006
                generator,
                sessions,
                modules,
                cost_model=DEFAULT_COST_MODEL,
                config=EmulationConfig(),
            )

    def test_coordinated_rejects_unmodified_mode(self, world):
        generator, sessions, _, deployment = world
        traffic = Traffic.materialized(generator, sessions)
        with pytest.raises(ValueError):
            run_emulation(
                traffic,
                deployment,
                config=EmulationConfig(mode=BroMode.UNMODIFIED),
            )

    def test_explicit_registry_overrides_config(self, world):
        generator, sessions, modules, _ = world
        registry = MetricsRegistry()
        config = EmulationConfig()  # registry: NULL_REGISTRY
        traffic = Traffic.materialized(generator, sessions)
        run_emulation(traffic, modules, config=config, registry=registry)
        assert registry.get("emulate_edge_seconds").count() == 1
        # The caller's config object itself is untouched.
        assert config.registry is NULL_REGISTRY


class TestRegistryIntegration:
    def test_session_counts_match_profile_exactly(self, world):
        generator, sessions, _, deployment = world
        registry = MetricsRegistry()
        usage = run_emulation(
            Traffic.materialized(generator, sessions), deployment, registry=registry
        )
        counter = registry.get("dispatch_sessions_total")
        traces = generator.split_by_node(list(sessions), transit=True)
        assert set(usage.reports) == set(traces)
        for node, trace in traces.items():
            assert counter.value(node=node) == len(trace), node
        assert counter.total() == sum(len(t) for t in traces.values())
        # Throughput and timing series exist for every node that saw traffic.
        per_sec = registry.get("engine_sessions_per_second")
        for node, trace in traces.items():
            if trace:
                assert per_sec.value(node=node) > 0
        assert registry.get("emulate_coordinated_seconds").count() == 1

    def test_hash_cache_counters_propagate(self, world):
        generator, sessions, _, deployment = world
        registry = MetricsRegistry()
        run_emulation(
            Traffic.materialized(generator, sessions), deployment, registry=registry
        )
        batched = registry.get("hash_batch_computed_total")
        assert batched is not None and batched.total() > 0

    def test_null_registry_default_records_nothing(self, world):
        generator, sessions, _, deployment = world
        usage = run_emulation(Traffic.materialized(generator, sessions), deployment)
        assert usage.reports
        assert NULL_REGISTRY.metrics() == []

    def test_compare_deployments_shares_one_config(self, world):
        generator, sessions, _, deployment = world
        registry = MetricsRegistry()
        compare_deployments(
            deployment, generator, sessions, x=1.0, registry=registry
        )
        assert registry.get("emulate_edge_seconds").count() == 1
        assert registry.get("emulate_coordinated_seconds").count() == 1


class TestApiFacade:
    def test_lazy_attribute_access(self):
        import repro

        api = repro.api
        assert api is not None
        from repro import api as direct

        assert direct is api

    def test_all_names_resolve(self):
        from repro import api

        for name in api.__all__:
            assert hasattr(api, name), name

    def test_blessed_surface_covers_the_pipeline(self):
        from repro import api

        for name in (
            "plan_deployment",
            "run_emulation",
            "Traffic",
            "ExecutionPolicy",
            "emulate_coordinated",
            "EmulationConfig",
            "run_scenario",
            "MetricsRegistry",
            "use_registry",
            "MetricsSnapshotReport",
            "Report",
        ):
            assert name in api.__all__, name

    def test_facade_objects_are_the_canonical_ones(self):
        from repro import api
        from repro.control.scenarios import run_scenario
        from repro.obs import MetricsRegistry as CanonicalRegistry

        assert api.run_scenario is run_scenario
        assert api.MetricsRegistry is CanonicalRegistry
        assert api.EmulationConfig is EmulationConfig
