"""Tests for coordination-unit construction."""

import pytest

from repro.core.units import (
    build_units,
    eligible_nodes,
    unit_key_for_session,
    units_by_ident,
)
from repro.hashing.keys import Aggregation
from repro.nids.modules import HTTP, SCAN, SIGNATURE, STANDARD_MODULES, SYNFLOOD
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def setup():
    topo = internet2()
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=21))
    sessions = generator.generate(3000)
    return topo, paths, generator, sessions


@pytest.fixture(scope="module")
def units(setup):
    _, paths, _, sessions = setup
    return build_units(STANDARD_MODULES, sessions, paths)


class TestUnitKeys:
    def test_path_scope_unordered(self, setup):
        _, _, _, sessions = setup
        session = sessions[0]
        key = unit_key_for_session(SIGNATURE, session)
        assert key == tuple(sorted((session.ingress, session.egress)))

    def test_ingress_scope(self, setup):
        _, _, _, sessions = setup
        session = sessions[0]
        assert unit_key_for_session(SCAN, session) == (session.ingress,)

    def test_egress_scope(self, setup):
        _, _, _, sessions = setup
        session = sessions[0]
        assert unit_key_for_session(SYNFLOOD, session) == (session.egress,)


class TestEligibleNodes:
    def test_path_scope_eligible_on_route(self, setup):
        _, paths, _, _ = setup
        key = tuple(sorted(("STTL", "NYCM")))
        eligible = eligible_nodes(SIGNATURE, key, paths)
        route = set(paths.path(key[0], key[1]).nodes)
        assert set(eligible) <= route
        assert key[0] in eligible and key[1] in eligible

    def test_ingress_scope_singleton(self, setup):
        _, paths, _, _ = setup
        assert eligible_nodes(SCAN, ("CHIN",), paths) == ("CHIN",)


class TestBuildUnits:
    def test_scan_units_are_singletons(self, units):
        scan_units = [u for u in units if u.class_name == "scan"]
        assert scan_units
        assert all(u.singleton for u in scan_units)

    def test_signature_covers_all_sessions(self, units, setup):
        _, _, _, sessions = setup
        signature_units = [u for u in units if u.class_name == "signature"]
        assert sum(u.items for u in signature_units) == len(sessions)

    def test_http_units_match_http_traffic_only(self, units, setup):
        _, _, _, sessions = setup
        http_sessions = [s for s in sessions if HTTP.traffic_filter.matches_session(s)]
        http_units = [u for u in units if u.class_name == "http"]
        assert sum(u.items for u in http_units) == len(http_sessions)
        assert sum(u.pkts for u in http_units) == sum(
            s.num_packets for s in http_sessions
        )

    def test_source_aggregation_counts_distinct_sources(self, units, setup):
        _, _, _, sessions = setup
        scan_units = units_by_ident(units)
        for node in {s.ingress for s in sessions}:
            unit = scan_units.get(("scan", (node,)))
            assert unit is not None
            distinct = {s.tuple.src for s in sessions if s.ingress == node}
            assert unit.items == len(distinct)

    def test_cpu_work_totals(self, units, setup):
        _, _, _, sessions = setup
        for spec in STANDARD_MODULES:
            expected = sum(spec.session_cpu(s) for s in sessions)
            measured = sum(u.cpu_work for u in units if u.class_name == spec.name)
            assert measured == pytest.approx(expected)

    def test_mem_bytes_consistent_with_items(self, units):
        for unit in units:
            assert unit.mem_bytes >= 0
            if unit.items:
                per_item = unit.mem_bytes / unit.items
                assert per_item > 0

    def test_no_empty_units(self, units):
        for unit in units:
            assert unit.pkts > 0 or unit.items > 0

    def test_units_sorted_deterministically(self, setup):
        _, paths, _, sessions = setup
        a = build_units(STANDARD_MODULES, sessions, paths)
        b = build_units(STANDARD_MODULES, sessions, paths)
        assert [u.ident for u in a] == [u.ident for u in b]

    def test_eligible_sets_nonempty(self, units):
        assert all(unit.eligible for unit in units)

    def test_synflood_items_are_destinations(self, units, setup):
        _, _, _, sessions = setup
        by_ident = units_by_ident(units)
        for node in {s.egress for s in sessions}:
            unit = by_ident.get(("synflood", (node,)))
            if unit is None:
                continue
            distinct = {
                s.tuple.dst
                for s in sessions
                if s.egress == node and SYNFLOOD.traffic_filter.matches_session(s)
            }
            assert unit.items == len(distinct)
