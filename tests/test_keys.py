"""Tests for hash-key extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.keys import (
    Aggregation,
    RECORD_HASH_FIELDS,
    destination_key,
    flow_key,
    host_pair_key,
    key_for,
    key_hash_unit,
    session_key,
    source_key,
)

host = st.integers(min_value=0, max_value=2**40 - 1)
port = st.integers(min_value=0, max_value=65535)
proto = st.sampled_from([6, 17, 1])


class TestSessionKey:
    def test_direction_independent(self):
        forward = session_key(1001, 2002, 40000, 80, 6)
        backward = session_key(2002, 1001, 80, 40000, 6)
        assert forward == backward

    def test_distinct_sessions_distinct_keys(self):
        a = session_key(1, 2, 1234, 80, 6)
        b = session_key(1, 2, 1235, 80, 6)
        assert a != b

    def test_proto_matters(self):
        assert session_key(1, 2, 53, 53, 6) != session_key(1, 2, 53, 53, 17)


class TestFlowKey:
    def test_direction_dependent(self):
        assert flow_key(1, 2, 10, 20, 6) != flow_key(2, 1, 20, 10, 6)

    def test_field_sensitivity(self):
        base = flow_key(1, 2, 10, 20, 6)
        assert flow_key(3, 2, 10, 20, 6) != base
        assert flow_key(1, 3, 10, 20, 6) != base
        assert flow_key(1, 2, 11, 20, 6) != base
        assert flow_key(1, 2, 10, 21, 6) != base
        assert flow_key(1, 2, 10, 20, 17) != base


class TestEndpointKeys:
    def test_source_key_only_uses_source(self):
        assert source_key(42) == source_key(42)
        assert source_key(42) != source_key(43)

    def test_destination_key(self):
        assert destination_key(7) != destination_key(8)

    def test_host_pair_unordered(self):
        assert host_pair_key(3, 9) == host_pair_key(9, 3)


class TestKeyFor:
    @pytest.mark.parametrize("aggregation", list(Aggregation))
    def test_dispatches_every_aggregation(self, aggregation):
        key = key_for(aggregation, 1, 2, 3, 4, 6)
        assert isinstance(key, bytes) and key

    def test_flow_vs_session(self):
        flow = key_for(Aggregation.FLOW, 5, 6, 100, 200, 6)
        session = key_for(Aggregation.SESSION, 5, 6, 100, 200, 6)
        assert flow != session

    def test_source_matches_source_key(self):
        assert key_for(Aggregation.SOURCE, 5, 6, 1, 2, 6) == source_key(5)


class TestKeyHashUnit:
    def test_in_unit_interval(self):
        value = key_hash_unit(Aggregation.SESSION, 1, 2, 3, 4, 6)
        assert 0.0 <= value < 1.0

    def test_keyed_hash_defeats_prediction(self):
        """Different administrator seeds give different placements —
        the Section 3.2 defense against evasion."""
        args = (Aggregation.FLOW, 1, 2, 3, 4, 6)
        assert key_hash_unit(*args, seed=1) != key_hash_unit(*args, seed=2)

    def test_record_hash_fields_cover_standard_aggregations(self):
        assert Aggregation.FLOW in RECORD_HASH_FIELDS
        assert Aggregation.SESSION in RECORD_HASH_FIELDS
        assert Aggregation.SOURCE in RECORD_HASH_FIELDS
        assert Aggregation.DESTINATION in RECORD_HASH_FIELDS


@given(src=host, dst=host, sport=port, dport=port, proto=proto)
@settings(max_examples=200, deadline=None)
def test_property_session_key_symmetric(src, dst, sport, dport, proto):
    assert session_key(src, dst, sport, dport, proto) == session_key(
        dst, src, dport, sport, proto
    )


@given(src=host, dst=host, sport=port, dport=port, proto=proto, seed=st.integers(0, 2**31))
@settings(max_examples=150, deadline=None)
def test_property_session_hash_direction_consistent(src, dst, sport, dport, proto, seed):
    """Both directions of a connection hash to the same value — the
    invariant that lets one node analyze a full session."""
    forward = key_hash_unit(Aggregation.SESSION, src, dst, sport, dport, proto, seed)
    backward = key_hash_unit(Aggregation.SESSION, dst, src, dport, sport, proto, seed)
    assert forward == backward
