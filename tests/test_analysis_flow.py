"""Tests for the determinism & spawn-safety flow pass (REP201-REP206).

Two layers:

* synthetic packages exercising each rule's positive and negative
  space (including suppressions and the timing allowlist);
* seeded **mutation tests** on a copy of the real ``repro`` tree — the
  acceptance scenarios: injecting ``time.time()`` into the merge path,
  a bare set iteration into report assembly, and an undeclared message
  kind into the controller dispatch must each produce the expected
  finding, proving the shipped-clean state is meaningful.
"""

import json
import os
import shutil
import textwrap

import pytest

import repro
from repro.analysis.astcache import ASTStore
from repro.analysis.cli import main as analysis_main
from repro.analysis.flow import FLOW_CATALOGUE, FlowConfig, flow_paths
from repro.analysis.lint import lint_paths

SRC_REPRO = os.path.dirname(os.path.abspath(repro.__file__))


def make_package(tmp_path, files):
    written = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        written.append(str(path))
    return sorted(written)


def run_flow(tmp_path, files, config):
    return flow_paths(
        make_package(tmp_path, files), config=config, root=str(tmp_path)
    )


def rule_ids(result):
    return [v.rule_id for v in result.violations]


def worker_config(**overrides):
    """A FlowConfig anchored on a synthetic ``pkg`` package."""
    base = dict(
        report_entrypoints=("pkg.worker.run_payload",),
        merge_entrypoints=("pkg.worker.merge_reports",),
        spawn_entrypoints=("pkg.worker.run_payload",),
        config_modules=("pkg.settings",),
        timing_allowlist_modules=(),
        protocol_module="pkg.protocol",
        dispatch_sites=("pkg.node.Hub.drain",),
    )
    base.update(overrides)
    return FlowConfig(**base)


WORKER_STUB = {
    "pkg/__init__.py": "",
    "pkg/worker.py": """\
        def run_payload(payload):
            return payload

        def merge_reports(reports):
            return reports
    """,
}


class TestREP201WallClock:
    def test_clock_read_reachable_from_report_entrypoint(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    from pkg import deep

                    def run_payload(payload):
                        return deep.helper(payload)

                    def merge_reports(reports):
                        return reports
                """,
                "pkg/deep.py": """\
                    import time

                    def helper(payload):
                        return time.time()
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP201"]
        violation = result.violations[0]
        assert "time.time" in violation.message
        assert "pkg.worker.run_payload" in violation.message

    def test_from_import_and_datetime_now_are_caught(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    from time import perf_counter
                    from datetime import datetime

                    def run_payload(payload):
                        return perf_counter(), datetime.now()

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP201", "REP201"]

    def test_timing_site_naming_a_seconds_family_is_allowlisted(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    import time

                    def run_payload(payload, registry):
                        started = time.perf_counter()
                        work = payload
                        registry.histogram("cell_seconds").observe(
                            time.perf_counter() - started
                        )
                        return work

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert result.ok

    def test_read_here_record_there_split_is_allowlisted(self, tmp_path):
        # The engine's shape: perf_counter read in one method, the
        # *_seconds family recorded by a helper it calls.
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    import time

                    def run_payload(payload, registry):
                        started = time.perf_counter()
                        record(registry, started)
                        return payload

                    def record(registry, started):
                        registry.histogram("trace_seconds").observe(started)

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert result.ok


class TestREP202UnorderedIteration:
    def test_bare_set_iteration_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        seen = set(payload)
                        out = []
                        for item in seen:
                            out.append(item)
                        return out

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP202"]

    def test_sorted_iteration_and_order_insensitive_consumers_pass(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        seen = set(payload)
                        total = sum(x for x in seen)
                        return [item for item in sorted(seen)] + [total, len(seen)]

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert result.ok

    def test_os_listdir_and_glob_are_unordered_sources(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    import glob
                    import os

                    def run_payload(payload):
                        rows = []
                        for name in os.listdir(payload):
                            rows.append(name)
                        rows.extend(list(glob.glob("*.json")))
                        return rows

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP202", "REP202"]

    def test_set_returning_annotation_tracks_through_calls(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    from typing import Set

                    def keys(payload) -> Set[str]:
                        return set(payload)

                    def run_payload(payload):
                        return [k for k in keys(payload)]

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP202"]

    def test_unreachable_set_iteration_is_out_of_scope(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        return payload

                    def merge_reports(reports):
                        return reports

                    def offline_tool(items):
                        return [x for x in set(items)]
                """,
            },
            worker_config(),
        )
        assert result.ok


class TestREP203FloatAccumulation:
    def test_float_sum_in_merge_path_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        return payload

                    def merge_reports(reports):
                        return sum(r.cpu_load for r in reports)
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP203"]
        assert "ExactSum" in result.violations[0].message

    def test_float_augassign_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        return payload

                    def merge_reports(reports):
                        total = 0.0
                        for r in reports:
                            total += r.coverage
                        return total
                """,
            },
            worker_config(),
        )
        assert "REP203" in rule_ids(result)

    def test_integer_counting_passes(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        return payload

                    def merge_reports(reports):
                        count = 0
                        for r in reports:
                            count += 1
                        return count + sum(1 for r in reports if r.ok)
                """,
            },
            worker_config(),
        )
        assert result.ok


class TestREP204SpawnSafety:
    def test_mutated_module_global_in_worker_path_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    _CACHE = {}

                    def run_payload(payload):
                        key = str(payload)
                        if key not in _CACHE:
                            _CACHE[key] = payload
                        return _CACHE[key]

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert "REP204" in rule_ids(result)
        assert "_CACHE" in result.violations[0].message

    def test_rebound_global_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    _current = None

                    def install(value):
                        global _current
                        _current = value

                    def run_payload(payload):
                        install(payload)
                        return _current

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert "REP204" in rule_ids(result)

    def test_immutable_constant_table_passes(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    PRESETS = {"fast": 1, "slow": 2}

                    def run_payload(payload):
                        return PRESETS[payload]

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert result.ok


class TestREP205EnvironReads:
    def test_environ_read_in_worker_path_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    import os

                    def run_payload(payload):
                        if os.environ.get("PKG_FAST"):
                            return None
                        return os.getenv("PKG_MODE"), os.environ["PKG_LEVEL"]

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert rule_ids(result) == ["REP205", "REP205", "REP205"]

    def test_config_layer_module_is_allowed(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/settings.py": """\
                    import os

                    def scale():
                        return float(os.environ.get("PKG_SCALE", "1.0"))
                """,
                "pkg/worker.py": """\
                    from pkg import settings

                    def run_payload(payload):
                        return settings.scale()

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert result.ok


PROTOCOL_STUB = """\
    from dataclasses import dataclass

    KIND_PING = "ping"
    KIND_PONG = "pong"

    @dataclass(frozen=True)
    class MessageSpec:
        kind: str
        sender: str
        receiver: str
        implicit: bool = False

    PROTOCOL = (
        MessageSpec(kind=KIND_PING, sender="node", receiver="hub"),
        MessageSpec(kind=KIND_PONG, sender="hub", receiver="node"),
    )
"""


class TestREP206ProtocolConformance:
    def test_conforming_protocol_is_clean(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                **WORKER_STUB,
                "pkg/protocol.py": PROTOCOL_STUB,
                "pkg/node.py": """\
                    from pkg.protocol import KIND_PING, KIND_PONG

                    class Hub:
                        def drain(self, bus, now):
                            for message in bus.deliver("hub", now):
                                if message.kind == KIND_PING:
                                    self.bus.send("hub", message.src, KIND_PONG, {}, 8, now)

                        def ping(self, now):
                            self.bus.send("node", "hub", KIND_PING, {}, 8, now)

                        def pong_handler(self, message):
                            pass

                    class Node:
                        def step(self, message):
                            if message.kind == "pong":
                                return True
                            return False
                """,
            },
            worker_config(
                dispatch_sites=("pkg.node.Hub.drain", "pkg.node.Node.step")
            ),
        )
        assert result.ok, result.violations

    def test_sent_but_undeclared_kind_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                **WORKER_STUB,
                "pkg/protocol.py": PROTOCOL_STUB,
                "pkg/node.py": """\
                    from pkg.protocol import KIND_PING

                    class Hub:
                        def drain(self, bus, now):
                            for message in bus.deliver("hub", now):
                                if message.kind == KIND_PING:
                                    pass
                                elif message.kind == "pong":
                                    pass

                        def ping(self, now):
                            self.bus.send("node", "hub", KIND_PING, {}, 8, now)
                            self.bus.send("node", "hub", "rebalance", {}, 8, now)

                        def pong(self, now):
                            self.bus.send("hub", "node", "pong", {}, 8, now)
                """,
            },
            worker_config(),
        )
        messages = [v.message for v in result.violations]
        assert any("'rebalance'" in m and "sent on the bus" in m for m in messages)

    def test_declared_but_never_sent_or_handled_is_flagged(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                **WORKER_STUB,
                "pkg/protocol.py": PROTOCOL_STUB,
                "pkg/node.py": """\
                    from pkg.protocol import KIND_PING

                    class Hub:
                        def drain(self, bus, now):
                            for message in bus.deliver("hub", now):
                                if message.kind == KIND_PING:
                                    pass

                        def ping(self, now):
                            self.bus.send("node", "hub", KIND_PING, {}, 8, now)
                """,
            },
            worker_config(),
        )
        messages = [v.message for v in result.violations]
        assert any("'pong' is never sent" in m for m in messages)
        assert any("'pong' is never handled" in m for m in messages)

    def test_implicit_kind_waives_the_handler_check(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                **WORKER_STUB,
                "pkg/protocol.py": """\
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class MessageSpec:
                        kind: str
                        sender: str
                        receiver: str
                        implicit: bool = False

                    PROTOCOL = (
                        MessageSpec(kind="lease", sender="hub", receiver="node", implicit=True),
                    )
                """,
                "pkg/node.py": """\
                    class Hub:
                        def drain(self, bus, now):
                            return bus.deliver("hub", now)

                        def renew(self, now):
                            self.bus.send("hub", "node", "lease", {}, 8, now)
                """,
            },
            worker_config(),
        )
        assert result.ok, result.violations

    def test_missing_protocol_module_skips_the_rule(self, tmp_path):
        result = run_flow(tmp_path, dict(WORKER_STUB), worker_config())
        assert result.ok


class TestSuppressionsAndErrors:
    def test_repnoqa_suppresses_a_flow_finding(self, tmp_path):
        result = run_flow(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        out = []
                        for item in set(payload):  # repnoqa: REP202 -- test
                            out.append(item)
                        return out

                    def merge_reports(reports):
                        return reports
                """,
            },
            worker_config(),
        )
        assert result.ok

    def test_unknown_entrypoint_surfaces_as_error(self, tmp_path):
        result = run_flow(
            tmp_path,
            dict(WORKER_STUB),
            worker_config(report_entrypoints=("pkg.worker.renamed_away",)),
        )
        assert not result.ok
        assert any("renamed_away" in message for _, message in result.errors)


class TestSharedASTStore:
    def test_lint_and_flow_parse_each_file_once(self, tmp_path):
        files = make_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    def run_payload(payload):
                        return payload

                    def merge_reports(reports):
                        return reports
                """,
            },
        )
        store = ASTStore()
        lint_paths(files, root=str(tmp_path), store=store)
        after_lint = store.parse_count
        assert after_lint == len(files)
        flow_paths(files, config=worker_config(), root=str(tmp_path), store=store)
        assert store.parse_count == after_lint  # zero re-parses

    def test_store_invalidates_on_file_change(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n")
        store = ASTStore()
        store.get(str(path))
        store.get(str(path))
        assert store.parse_count == 1
        path.write_text("x = 2\ny = 3\n")
        os.utime(path, ns=(1, 1))  # force a distinct fingerprint
        _, tree = store.get(str(path))
        assert store.parse_count == 2
        assert len(tree.body) == 2


class TestFlowMetrics:
    def test_registry_receives_flow_families(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        files = make_package(tmp_path, dict(WORKER_STUB))
        flow_paths(
            files, config=worker_config(), root=str(tmp_path), registry=registry
        )
        assert registry.get("analysis_flow_files_total").total() == len(files)
        assert registry.get("analysis_flow_rule_seconds") is not None
        assert registry.get("analysis_flow_findings_total") is not None


class TestCLI:
    def test_list_rules_prints_the_catalogue(self, capsys):
        assert analysis_main(["flow", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in FLOW_CATALOGUE:
            assert rule_id in out

    def test_exit_one_on_findings_and_json_format(self, tmp_path, capsys):
        make_package(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/worker.py": """\
                    import os

                    def anything(payload):
                        return payload
                """,
            },
        )
        # Default config: the repo entrypoints don't exist in this tree,
        # so the run must fail loudly (errors), never silently pass.
        code = analysis_main(["flow", str(tmp_path / "pkg"), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"]

    def test_unknown_select_is_a_usage_error(self, tmp_path):
        make_package(tmp_path, {"pkg/__init__.py": ""})
        assert analysis_main(["flow", str(tmp_path / "pkg"), "--select", "REP999"]) == 2

    def test_shipped_tree_is_clean(self):
        assert analysis_main(["flow", SRC_REPRO]) == 0


@pytest.fixture
def repro_copy(tmp_path):
    """A private copy of the real package tree, safe to mutate."""
    target = tmp_path / "repro"
    shutil.copytree(
        SRC_REPRO, target, ignore=shutil.ignore_patterns("__pycache__")
    )
    return target


def mutate(path, anchor, replacement):
    text = path.read_text()
    assert anchor in text, f"mutation anchor not found in {path}"
    path.write_text(text.replace(anchor, replacement, 1))


class TestSeededMutations:
    """Injected defects must produce the expected findings."""

    def test_wall_clock_in_merge_path_raises_rep201(self, repro_copy):
        engine = repro_copy / "nids" / "engine.py"
        anchor = "    def merge(self, other:"
        mutate(
            engine,
            anchor,
            "    def merge(self, other:",
        )
        text = engine.read_text()
        head, _, tail = text.partition(anchor)
        # Insert a wall-clock read as the merge body's first statement.
        line_end = tail.index("\n", tail.index(":")) + 1
        tail = (
            tail[:line_end]
            + "        import time\n        _wall = time.time()\n"
            + tail[line_end:]
        )
        engine.write_text(head + anchor + tail)
        result = flow_paths([str(repro_copy)])
        assert any(
            v.rule_id == "REP201" and "merge" in v.message
            for v in result.violations
        ), result.violations

    def test_bare_set_iteration_in_report_assembly_raises_rep202(self, repro_copy):
        emulation = repro_copy / "nids" / "emulation.py"
        text = emulation.read_text()
        anchor = "def run_emulation("
        assert anchor in text
        body_start = text.index("\n", text.index('"""', text.index('"""', text.index(anchor)) + 3)) + 1
        injected = (
            "    _scramble = []\n"
            "    for _key in {1, 2, 3}:\n"
            "        _scramble.append(_key)\n"
        )
        emulation.write_text(text[:body_start] + injected + text[body_start:])
        result = flow_paths([str(repro_copy)])
        assert any(
            v.rule_id == "REP202" and "run_emulation" in v.message
            for v in result.violations
        ), result.violations

    def test_undeclared_message_kind_in_controller_raises_rep206(self, repro_copy):
        controller = repro_copy / "control" / "controller.py"
        mutate(
            controller,
            "            elif message.kind == KIND_RESYNC_REQUEST:",
            "            elif message.kind == \"rebalance\":\n"
            "                pass\n"
            "            elif message.kind == KIND_RESYNC_REQUEST:",
        )
        result = flow_paths([str(repro_copy)])
        assert any(
            v.rule_id == "REP206" and "'rebalance'" in v.message
            for v in result.violations
        ), result.violations

    def test_unmutated_copy_is_clean(self, repro_copy):
        result = flow_paths([str(repro_copy)])
        assert result.ok, (result.violations, result.errors)
