"""Chaos-harness tests: fault plans, chaos bus, graceful degradation.

The robustness layer promises (``docs/fault_model.md``) that under
adversarial fault schedules — partitions, duplicated/reordered
delivery, warm restarts with stale state, controller outages — no
session ever loses coverage the edge-only baseline would have
provided, no stale-epoch manifest outlives its lease, and the plane
reconverges within a bounded number of epochs of the last fault
healing.  These tests pin the mechanisms (leases, the epoch fence,
capped backoff, fencing) at unit level and then assert the acceptance
invariants on a full controller-outage chaos run.
"""

import json

import pytest

from repro.control.agent import Agent, AgentConfig
from repro.control.bus import Bus, BusConfig
from repro.control.chaos import (
    ChaosBus,
    ChaosConfig,
    ChaosEpochRecord,
    FaultEvent,
    FaultPlan,
    InvariantMonitor,
    NAMED_PLANS,
    build_plan,
    random_fault_plan,
    run_chaos,
)
from repro.control.controller import Controller, ControllerConfig, PushState
from repro.control.epochs import EpochRecord
from repro.control.scenarios import COVERAGE_FLOOR
from repro.core.manifest import NodeManifest
from repro.core.manifest_io import manifest_diff, manifest_to_dict
from repro.hashing.ranges import HashRange
from repro.nids.modules import STANDARD_MODULES
from repro.obs import MetricsRegistry
from repro.topology import PathSet, by_label


def _manifest(node, key, lo, hi):
    return NodeManifest(node=node, entries={("c", key): (HashRange(lo, hi),)})


def _full_push(version, manifest, lease=None):
    payload = {
        "version": version,
        "mode": "full",
        "base": None,
        "data": manifest_to_dict(manifest),
    }
    if lease is not None:
        payload["lease_expires_at"] = lease
    return payload


def _delta_push(version, base_version, old, new, lease=None):
    payload = {
        "version": version,
        "mode": "delta",
        "base": base_version,
        "data": manifest_diff(old, new),
    }
    if lease is not None:
        payload["lease_expires_at"] = lease
    return payload


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="gremlins", start=0.0, end=1.0)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="controller_down", start=2.0, end=2.0)

    def test_rejects_bad_rate_and_delay(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="loss_burst", start=0.0, end=1.0, rate=1.5)
        with pytest.raises(ValueError):
            FaultEvent(kind="loss_burst", start=0.0, end=1.0, rate=0.0)
        with pytest.raises(ValueError):
            FaultEvent(kind="delay_burst", start=0.0, end=1.0, delay=0.0)

    def test_crash_needs_a_node(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", start=0.0, end=1.0)

    def test_active_is_half_open(self):
        event = FaultEvent(kind="controller_down", start=1.0, end=3.0)
        assert not event.active(0.99)
        assert event.active(1.0)
        assert event.active(2.99)
        assert not event.active(3.0)


class TestFaultPlan:
    def test_rejects_overlapping_crashes_per_node(self):
        with pytest.raises(ValueError):
            FaultPlan(
                name="bad",
                events=(
                    FaultEvent(kind="crash", start=0.0, end=2.0, node="a"),
                    FaultEvent(kind="crash", start=1.0, end=3.0, node="a"),
                ),
            )

    def test_heal_time_is_last_window_close(self):
        plan = FaultPlan(
            name="p",
            events=(
                FaultEvent(kind="controller_down", start=1.0, end=4.0),
                FaultEvent(kind="loss_burst", start=2.0, end=6.0, rate=0.5),
            ),
        )
        assert plan.heal_time == 6.0
        assert FaultPlan(name="empty", events=()).heal_time == 0.0

    def test_channel_and_process_selectors(self):
        plan = FaultPlan(
            name="p",
            events=(
                FaultEvent(kind="controller_down", start=1.0, end=4.0),
                FaultEvent(kind="crash", start=2.0, end=3.0, node="a"),
            ),
        )
        assert plan.controller_down(2.0)
        assert not plan.controller_down(5.0)
        # controller_down is also a channel fault (inbound drops); the
        # crash is purely the runner's business.
        assert [e.kind for e in plan.channel_events(2.0)] == ["controller_down"]
        assert [e.node for e in plan.crash_events()] == ["a"]


class TestPlanFactories:
    def test_random_plan_is_deterministic(self):
        nodes = ("a", "b", "c")
        first = random_fault_plan(17, 18, nodes)
        second = random_fault_plan(17, 18, nodes)
        assert first == second
        assert first != random_fault_plan(18, 18, nodes)

    def test_random_plan_leaves_reconvergence_room(self):
        for seed in (3, 17, 42):
            plan = random_fault_plan(seed, 18, ("a", "b"))
            assert 2 <= len(plan.events) <= 4
            assert plan.heal_time <= 13.0

    def test_random_plan_needs_enough_epochs(self):
        with pytest.raises(ValueError):
            random_fault_plan(1, 8, ("a",))

    def test_build_plan_dispatch(self):
        nodes = ("a", "b")
        assert build_plan("random", 17, 18, nodes) == random_fault_plan(
            17, 18, nodes
        )
        outage = build_plan("controller-outage", 7, 18, nodes)
        assert [e.kind for e in outage.events] == ["controller_down"]
        with pytest.raises(ValueError):
            build_plan("no-such-plan", 0, 18, nodes)
        with pytest.raises(ValueError):
            build_plan("controller-outage", 0, 10, nodes)

    def test_every_named_plan_fits_its_minimum_run(self):
        for name in NAMED_PLANS:
            plan = build_plan(name, 7, 14, ("a", "b"))
            assert plan.heal_time + 2 <= 14


class TestChaosBus:
    def _bus(self, events, registry=None):
        return ChaosBus(
            FaultPlan(name="t", events=tuple(events)),
            BusConfig(latency=0.0),
            registry=registry,
            chaos_seed=1,
        )

    def test_partition_is_asymmetric(self):
        registry = MetricsRegistry()
        bus = self._bus(
            [FaultEvent(kind="partition", start=0.0, end=10.0,
                        src="controller", dst="b")],
            registry=registry,
        )
        bus.send("controller", "b", "k", 1, 1, now=1.0)
        bus.send("b", "controller", "k", 2, 1, now=1.0)
        bus.send("controller", "c", "k", 3, 1, now=1.0)
        assert bus.deliver("b", 2.0) == []
        assert [m.payload for m in bus.deliver("controller", 2.0)] == [2]
        assert [m.payload for m in bus.deliver("c", 2.0)] == [3]
        counter = registry.get("chaos_injected_total")
        assert counter.value(fault="partition") == 1

    def test_partition_window_ends(self):
        bus = self._bus(
            [FaultEvent(kind="partition", start=0.0, end=2.0,
                        src="a", dst="b")]
        )
        bus.send("a", "b", "k", 1, 1, now=3.0)
        assert [m.payload for m in bus.deliver("b", 4.0)] == [1]

    def test_controller_down_drops_inbound_only(self):
        bus = self._bus(
            [FaultEvent(kind="controller_down", start=0.0, end=10.0)]
        )
        bus.send("a", "controller", "heartbeat", 1, 1, now=1.0)
        bus.send("controller", "a", "k", 2, 1, now=1.0)
        assert bus.deliver("controller", 2.0) == []
        assert [m.payload for m in bus.deliver("a", 2.0)] == [2]

    def test_loss_burst_drops_at_rate_one(self):
        bus = self._bus(
            [FaultEvent(kind="loss_burst", start=0.0, end=10.0, rate=1.0)]
        )
        bus.send("a", "b", "k", 1, 1, now=1.0)
        assert bus.deliver("b", 2.0) == []
        assert bus.stats.dropped == 1

    def test_delay_burst_postpones_delivery(self):
        bus = self._bus(
            [FaultEvent(kind="delay_burst", start=0.0, end=10.0, delay=0.5)]
        )
        bus.send("a", "b", "k", 1, 1, now=1.0)
        assert bus.deliver("b", 1.4) == []
        assert [m.payload for m in bus.deliver("b", 1.6)] == [1]

    def test_duplicate_delivers_two_copies(self):
        bus = self._bus(
            [FaultEvent(kind="duplicate", start=0.0, end=10.0,
                        rate=1.0, delay=0.5)]
        )
        bus.send("a", "b", "k", {"v": 1}, 1, now=1.0)
        first = bus.deliver("b", 1.1)
        assert [m.payload for m in first] == [{"v": 1}]
        second = bus.deliver("b", 2.0)
        assert [m.payload for m in second] == [{"v": 1}]

    def test_reorder_overtakes_later_sends(self):
        bus = self._bus(
            [FaultEvent(kind="reorder", start=0.0, end=0.5,
                        rate=1.0, delay=1.0)]
        )
        bus.send("a", "b", "k", "held", 1, now=0.1)
        bus.send("a", "b", "k", "later", 1, now=0.6)  # window closed
        assert [m.payload for m in bus.deliver("b", 5.0)] == ["later", "held"]

    def test_chaos_rng_is_seed_deterministic(self):
        events = [FaultEvent(kind="loss_burst", start=0.0, end=10.0, rate=0.5)]
        outcomes = []
        for _ in range(2):
            bus = self._bus(events)
            for i in range(50):
                bus.send("a", "b", "k", i, 1, now=1.0)
            outcomes.append([m.payload for m in bus.deliver("b", 2.0)])
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 50


class TestAgentLease:
    def _leased_agent(self, ttl=2.0):
        bus = Bus(BusConfig(latency=0.0))
        agent = Agent(
            "n1", bus,
            config=AgentConfig(transition_window=2.0, lease_ttl=ttl),
        )
        return agent, bus

    def test_expiry_forces_edge_only_fallback(self):
        agent, bus = self._leased_agent()
        manifest = _manifest("n1", ("a", "b"), 0.0, 1.0)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, manifest, lease=1.0), 1, 0.0)
        agent.step(0.1)
        assert not agent.degraded
        # Coordinated: answers from the manifest, including mid-path units.
        assert agent.responsible_for_new("c", ("a", "b"), 0.5)
        agent.step(1.5)  # lease (absolute expiry 1.0) has lapsed
        assert agent.degraded
        assert agent.stats.lease_expirations == 1
        # Edge-only stance: own-endpoint units yes, mid-path units no —
        # the stale manifest is not consulted at all.
        assert agent.responsible_for_new("c", ("n1", "x"), 0.99)
        assert not agent.responsible_for_new("c", ("a", "b"), 0.5)
        assert agent.responsible_for_existing("c", ("n1", "x"), 0.99)
        assert not agent.responsible_for_existing("c", ("a", "b"), 0.5)

    def test_renewed_lease_alone_cannot_exit_fallback(self):
        """Epoch fence: exit needs a lease AND a caught-up manifest."""
        agent, bus = self._leased_agent()
        manifest = _manifest("n1", ("a", "b"), 0.0, 1.0)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, manifest, lease=1.0), 1, 0.0)
        agent.step(0.1)
        agent.step(1.5)
        assert agent.degraded
        # A renewal announcing a newer epoch arrives: lease is valid
        # again but the applied manifest (v0) is fenced behind v2.
        bus.send("controller", "n1", "lease-renew",
                 {"version": 2, "lease_expires_at": 10.0}, 1, 2.0)
        agent.step(2.1)
        assert agent.degraded
        assert agent.known_version == 2
        # The v2 push is what re-coordinates the node.
        bus.send("controller", "n1", "manifest-update",
                 _full_push(2, manifest, lease=10.0), 1, 2.5)
        agent.step(2.6)
        assert not agent.degraded
        assert agent.applied_version == 2

    def test_degraded_flag_reported_in_heartbeats(self):
        agent, bus = self._leased_agent(ttl=0.5)
        manifest = _manifest("n1", ("n1", "x"), 0.0, 1.0)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, manifest, lease=0.5), 1, 0.0)
        agent.step(0.1)
        agent.step(1.2)
        beats = [m.payload for m in bus.deliver("controller", 99.0)
                 if m.kind == "heartbeat"]
        assert [b["degraded"] for b in beats] == [False, True]


class TestIdempotentDeltas:
    """Satellite: duplicated and reordered delivery must be a no-op —
    the applied manifest stays byte-identical (epoch fence)."""

    def _agent(self):
        bus = Bus(BusConfig(latency=0.0))
        return Agent("n1", bus, config=AgentConfig(transition_window=2.0)), bus

    def test_replayed_pushes_leave_manifest_byte_identical(self):
        agent, bus = self._agent()
        m0 = _manifest("n1", ("k",), 0.0, 0.5)
        m1 = _manifest("n1", ("k",), 0.0, 0.7)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, m0), 1, 0.0)
        agent.step(0.1)
        bus.send("controller", "n1", "manifest-update",
                 _delta_push(1, 0, m0, m1), 1, 1.0)
        agent.step(1.1)
        assert agent.applied_version == 1
        frozen = json.dumps(manifest_to_dict(agent.manifest), sort_keys=True)

        # Replay both pushes, out of order, with an extra duplicate.
        bus.send("controller", "n1", "manifest-update",
                 _delta_push(1, 0, m0, m1), 1, 2.0)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, m0), 1, 2.0)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, m0), 1, 2.0)
        agent.step(2.1)

        assert agent.applied_version == 1
        assert agent.stats.updates_applied == 2
        assert agent.stats.duplicates_ignored == 3
        replayed = json.dumps(manifest_to_dict(agent.manifest), sort_keys=True)
        assert replayed == frozen
        acks = [m.payload for m in bus.deliver("controller", 99.0)
                if m.kind == "ack"]
        # Every replay is re-acked so the controller stops retrying.
        assert [a["status"] for a in acks] == [
            "applied", "applied", "duplicate", "duplicate", "duplicate",
        ]


class TestWarmRestart:
    """Satellite: a warm-restarted agent must refuse its stale ranges
    and request a full (non-delta) resync."""

    def _leased_agent(self):
        bus = Bus(BusConfig(latency=0.0))
        agent = Agent(
            "n1", bus,
            config=AgentConfig(transition_window=2.0, lease_ttl=2.0),
        )
        return agent, bus

    def test_stale_manifest_never_served_after_warm_restart(self):
        agent, bus = self._leased_agent()
        stale = _manifest("n1", ("a", "b"), 0.0, 1.0)  # mid-path unit
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, stale, lease=10.0), 1, 0.0)
        agent.step(0.1)
        assert agent.responsible_for_new("c", ("a", "b"), 0.5)

        agent.crash()
        agent.recover(warm=True)
        # The pre-crash manifest survives on disk for inspection...
        assert agent.manifest.entries == stale.entries
        # ...but is never served: version reset, degraded, edge stance.
        assert agent.applied_version == -1
        assert agent.known_version == 0  # remembers the fence
        assert agent.degraded
        assert not agent.responsible_for_new("c", ("a", "b"), 0.5)
        assert not agent.responsible_for_existing("c", ("a", "b"), 0.5)
        assert agent.responsible_for_new("c", ("n1", "x"), 0.5)

    def test_requests_full_resync_and_refuses_deltas(self):
        agent, bus = self._leased_agent()
        m0 = _manifest("n1", ("a", "b"), 0.0, 1.0)
        m1 = _manifest("n1", ("a", "b"), 0.0, 0.5)
        bus.send("controller", "n1", "manifest-update",
                 _full_push(0, m0, lease=10.0), 1, 0.0)
        agent.step(0.1)
        agent.crash()
        agent.recover(warm=True)

        agent.step(1.0)
        requests = [m for m in bus.deliver("controller", 1.5)
                    if m.kind == "resync-request"]
        assert len(requests) == 1
        assert requests[0].payload == {"node": "n1", "applied": -1}

        # A delta against the on-disk state must be refused: the stale
        # snapshot is not a trustworthy base.
        bus.send("controller", "n1", "manifest-update",
                 _delta_push(1, 0, m0, m1, lease=10.0), 1, 2.0)
        agent.step(2.1)
        assert agent.applied_version == -1
        acks = [m.payload for m in bus.deliver("controller", 2.5)
                if m.kind == "ack"]
        assert [a["status"] for a in acks] == ["resync"]

        # The full push re-coordinates the node in one step.
        bus.send("controller", "n1", "manifest-update",
                 _full_push(1, m1, lease=10.0), 1, 3.0)
        agent.step(3.1)
        assert agent.applied_version == 1
        assert not agent.degraded
        assert agent.responsible_for_new("c", ("a", "b"), 0.25)
        assert not agent.responsible_for_new("c", ("a", "b"), 0.75)


@pytest.fixture(scope="module")
def controller_pair():
    topology = by_label("Internet2")
    paths = PathSet(topology)
    modules = list(STANDARD_MODULES)

    def make(config):
        return Controller(
            topology, paths, modules, Bus(BusConfig(latency=0.0)), config
        )

    return make


class TestRetryBackoff:
    """Satellite: fixed retransmission is replaced by capped
    exponential backoff with seeded jitter."""

    def test_first_retry_is_exactly_base_backoff(self, controller_pair):
        controller = controller_pair(ControllerConfig())
        assert controller.config.retry_backoff == 0.45
        assert controller._retry_delay(1) == 0.45

    def test_delays_double_with_downward_jitter_up_to_cap(self, controller_pair):
        controller = controller_pair(ControllerConfig(retry_seed=3))
        for attempt in range(2, 9):
            raw = min(3.6, 0.45 * 2.0 ** (attempt - 1))
            delay = controller._retry_delay(attempt)
            assert raw * 0.75 <= delay <= raw
        # Deep attempts are capped, never unbounded.
        assert controller._retry_delay(30) <= 3.6

    def test_jitter_is_seed_deterministic(self, controller_pair):
        first = controller_pair(ControllerConfig(retry_seed=9))
        second = controller_pair(ControllerConfig(retry_seed=9))
        other = controller_pair(ControllerConfig(retry_seed=10))
        sequence = [first._retry_delay(a) for a in range(2, 8)]
        assert sequence == [second._retry_delay(a) for a in range(2, 8)]
        assert sequence != [other._retry_delay(a) for a in range(2, 8)]


class TestSupersededAcks:
    def _push_state(self, version, manifest):
        return PushState(
            version=version, mode="full", payload={}, size_bytes=1,
            full_bytes=1, manifest=manifest, first_sent=0.0, last_sent=0.0,
        )

    def test_late_applied_ack_credits_a_delta_base(self, controller_pair):
        controller = controller_pair(ControllerConfig())
        old = _manifest("NYCM", ("k",), 0.0, 0.5)
        new = _manifest("NYCM", ("k",), 0.0, 0.7)
        controller._pushed_history["NYCM"] = [self._push_state(0, old)]
        controller.outstanding["NYCM"] = self._push_state(1, new)
        controller._handle_ack(
            {"node": "NYCM", "version": 0, "applied": 0, "status": "applied"},
            now=1.0,
        )
        assert controller.acked_version["NYCM"] == 0
        assert controller.acked_manifests["NYCM"] is old
        assert controller.stats.superseded_acks == 1
        # The current push is still outstanding — only the base moved.
        assert controller.outstanding["NYCM"].version == 1

    def test_superseded_duplicate_ack_is_not_credited(self, controller_pair):
        controller = controller_pair(ControllerConfig())
        old = _manifest("NYCM", ("k",), 0.0, 0.5)
        controller._pushed_history["NYCM"] = [self._push_state(0, old)]
        controller.outstanding["NYCM"] = self._push_state(1, old)
        controller._handle_ack(
            {"node": "NYCM", "version": 0, "applied": -1,
             "status": "duplicate"},
            now=1.0,
        )
        assert controller.acked_version["NYCM"] == -1
        assert controller.stats.superseded_acks == 0


class TestInvariantMonitor:
    def _chaos_record(self, epoch, settled):
        record = EpochRecord(epoch=epoch, time=float(epoch))
        record.converged = settled
        record.coverage = 1.0 if settled else 0.5
        return ChaosEpochRecord(record=record)

    def test_reconvergence_within_budget_passes(self):
        monitor = InvariantMonitor(STANDARD_MODULES)
        records = [self._chaos_record(e, settled=e >= 8) for e in range(12)]
        monitor.reconvergence(records, heal_epoch=6, budget=4)
        assert monitor.violations == []

    def test_reconvergence_past_deadline_violates(self):
        monitor = InvariantMonitor(STANDARD_MODULES)
        records = [self._chaos_record(e, settled=e >= 11) for e in range(12)]
        monitor.reconvergence(records, heal_epoch=6, budget=4)
        [violation] = monitor.violations
        assert violation.rule == "reconvergence"
        assert violation.epoch == 11

    def test_never_settling_violates(self):
        monitor = InvariantMonitor(STANDARD_MODULES)
        records = [self._chaos_record(e, settled=False) for e in range(12)]
        monitor.reconvergence(records, heal_epoch=6, budget=4)
        [violation] = monitor.violations
        assert "never settled" in violation.detail

    def test_stale_lease_detected(self):
        monitor = InvariantMonitor(STANDARD_MODULES)
        agent = Agent(
            "n1", Bus(BusConfig(latency=0.0)),
            config=AgentConfig(lease_ttl=1.0),
        )
        agent.applied_version = 0
        agent.lease_expires_at = 0.5
        agent.degraded = False
        monitor.stale_leases(3, 1.0, {"n1": agent})
        [violation] = monitor.violations
        assert violation.rule == "stale-lease"
        assert "n1" in str(violation)
        # Degraded is the *correct* reaction to an expired lease.
        agent.degraded = True
        monitor.violations.clear()
        monitor.stale_leases(4, 1.0, {"n1": agent})
        assert monitor.violations == []


class TestChaosConfig:
    def test_requires_positive_lease(self):
        plan = FaultPlan(name="p", events=())
        with pytest.raises(ValueError):
            ChaosConfig(plan=plan, lease_ttl=0.0)

    def test_run_must_outlast_the_plan(self):
        plan = FaultPlan(
            name="p",
            events=(FaultEvent(kind="controller_down", start=1.0, end=9.0),),
        )
        with pytest.raises(ValueError):
            ChaosConfig(plan=plan, epochs=10)

    def test_unknown_plan_node_is_rejected(self):
        plan = FaultPlan(
            name="p",
            events=(FaultEvent(kind="crash", start=1.0, end=2.0,
                               node="NOWHERE"),),
        )
        with pytest.raises(ValueError):
            run_chaos(ChaosConfig(plan=plan, epochs=18))


@pytest.fixture(scope="module")
def outage():
    """The acceptance run: a total operations-center outage long
    enough that every agent's lease expires mid-window."""
    registry = MetricsRegistry()
    plan = build_plan("controller-outage", seed=7, epochs=18, nodes=())
    result = run_chaos(
        ChaosConfig(plan=plan, epochs=18, base_sessions=400, seed=7),
        registry=registry,
    )
    return result, registry


class TestControllerOutageAcceptance:
    def test_no_invariant_violations(self, outage):
        result, _registry = outage
        assert result.check_acceptance() == []
        assert result.ok

    def test_whole_plane_degrades_before_serving_stale_config(self, outage):
        """Agents fall back to edge-only while the controller is still
        down — before lease expiry could leave stale ranges violating
        coverage — and the absolute lease expiry degrades every node in
        the same epoch."""
        result, _registry = outage
        nodes = tuple(sorted(by_label("Internet2").node_names))
        fd = result.first_degraded_epoch
        assert fd is not None
        outage_epochs = {
            r.record.epoch for r in result.records if r.controller_down
        }
        assert fd in outage_epochs  # degraded *during* the outage
        assert result.records[fd].degraded_nodes == nodes  # atomically

    def test_no_epoch_drops_below_edge_only_baseline(self, outage):
        result, _registry = outage
        for chaos_record in result.records:
            if chaos_record.excluded:
                continue
            assert chaos_record.uncovered_pairs <= (
                (1.0 - COVERAGE_FLOOR) * chaos_record.baseline_pairs
            )

    def test_all_degraded_outage_epochs_have_full_edge_coverage(self, outage):
        """The marquee guarantee: once the whole plane is edge-only,
        every baseline-coverable pair is actually analyzed."""
        result, _registry = outage
        nodes = tuple(sorted(by_label("Internet2").node_names))
        marquee = [
            r for r in result.records
            if r.controller_down and r.degraded_nodes == nodes
        ]
        assert marquee  # the outage outlives the lease TTL
        for chaos_record in marquee:
            assert chaos_record.uncovered_pairs == 0
            assert chaos_record.record.coverage >= COVERAGE_FLOOR

    def test_reconverges_within_budget(self, outage):
        result, _registry = outage
        heal = int(result.config.plan.heal_time + 0.999)
        assert result.reconverged_epoch is not None
        assert result.reconverged_epoch <= heal + result.config.reconverge_epochs
        final = result.records[-1]
        assert final.record.converged
        assert final.degraded_nodes == ()
        assert final.record.fenced_nodes == ()
        assert final.record.coverage >= COVERAGE_FLOOR

    def test_chaos_metric_families_recorded(self, outage):
        _result, registry = outage
        injected = registry.get("chaos_injected_total")
        assert injected.value(fault="controller_down") > 0
        # Pre-declared and exported at zero: a clean run still shows
        # the invariant family (value 0 != absent).
        assert registry.get("chaos_invariant_violations_total").total() == 0
        nodes = by_label("Internet2").node_names
        expirations = registry.get("agent_lease_expirations_total")
        assert expirations.total() >= len(nodes)
        assert registry.get("controller_lease_fences_total").total() >= len(nodes)
