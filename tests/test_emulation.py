"""Tests for the network-wide emulation (edge vs. coordinated)."""

import pytest

from repro.core.dispatch import CoordinatedDispatcher, UnitResolver
from repro.core.manifest import full_manifest
from repro.core.nids_deployment import plan_deployment
from repro.nids.emulation import (
    Traffic,
    compare_deployments,
    run_emulation,
)
from repro.nids.engine import BroInstance, BroMode, EmulationConfig
from repro.nids.modules import STANDARD_MODULES, module_set
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=71))
    sessions = generator.generate(4000)
    deployment = plan_deployment(topo, paths, module_set(21), sessions)
    return topo, generator, sessions, deployment


@pytest.fixture(scope="module")
def edge(world):
    _, generator, sessions, deployment = world
    return run_emulation(
        Traffic.materialized(generator, sessions), deployment.modules
    )


@pytest.fixture(scope="module")
def coordinated(world):
    _, generator, sessions, deployment = world
    return run_emulation(Traffic.materialized(generator, sessions), deployment)


class TestHeadlineResults:
    def test_coordination_reduces_max_cpu(self, edge, coordinated):
        """The paper's headline: ~50% lower max CPU footprint."""
        reduction = 1.0 - coordinated.max_cpu / edge.max_cpu
        assert reduction > 0.30

    def test_coordination_reduces_max_memory(self, edge, coordinated):
        """~20% lower max memory footprint (smaller at small volume)."""
        assert coordinated.max_mem_bytes < edge.max_mem_bytes

    def test_new_york_hottest_edge_node(self, edge):
        """Fig. 8: node 11 (New York) is the most loaded edge node."""
        assert edge.hottest_cpu_node() == "NYCM"

    def test_coordination_offloads_new_york(self, edge, coordinated):
        assert coordinated.cpu("NYCM") < edge.cpu("NYCM")

    def test_some_transit_nodes_take_more_work(self, world, edge, coordinated):
        """Fig. 8: coordination makes some nodes do *more* NIDS work
        than in the edge-only setting (they absorb offloaded load)."""
        topo = world[0]
        gained = [
            n for n in topo.node_names if coordinated.cpu(n) > edge.cpu(n)
        ]
        assert gained


class TestFunctionalEquivalence:
    """The paper verified that the aggregate behaviour of the
    network-wide and standalone approaches are equivalent."""

    def test_coordinated_alerts_equal_standalone(self, world):
        topo, generator, sessions, deployment = world
        dispatcher = CoordinatedDispatcher(
            node="standalone",
            manifest=full_manifest("standalone"),
            modules=STANDARD_MODULES,
            resolver=UnitResolver(topo.node_names),
        )
        detect = EmulationConfig(run_detectors=True)
        standalone = BroInstance(
            "standalone",
            STANDARD_MODULES,
            BroMode.UNMODIFIED,
            config=detect,
        ).process_sessions(sessions)
        standalone_keys = {a.key() for a in standalone.alerts}

        small_deployment = plan_deployment(
            topo, generator.paths, STANDARD_MODULES, sessions
        )
        coordinated = run_emulation(
            Traffic.materialized(generator, sessions),
            small_deployment,
            config=detect,
        )
        assert coordinated.alert_keys() == standalone_keys


class TestAccountingConsistency:
    def test_all_nodes_reported(self, world, edge, coordinated):
        topo = world[0]
        assert set(edge.reports) == set(topo.node_names)
        assert set(coordinated.reports) == set(topo.node_names)

    def test_total_module_work_preserved(self, world, edge, coordinated):
        """Coordination redistributes analysis work but the aggregate
        module work must equal the standalone total (complete, non-
        duplicated coverage).  Edge-only duplicates sessions seen at
        both endpoints, so its total is strictly larger."""
        _, _, sessions, deployment = world
        expected = sum(
            spec.session_cpu(s) for spec in deployment.modules for s in sessions
        )
        coordinated_total = sum(
            sum(report.module_cpu.values())
            for report in coordinated.reports.values()
        )
        edge_total = sum(
            sum(report.module_cpu.values()) for report in edge.reports.values()
        )
        assert coordinated_total == pytest.approx(expected, rel=1e-6)
        assert edge_total > expected

    def test_compare_deployments_row(self, world):
        _, generator, sessions, deployment = world
        row = compare_deployments(deployment, generator, sessions, x=21)
        assert row.x == 21
        assert 0.0 < row.cpu_reduction < 1.0
        assert row.coord_mem_mb > 0

    def test_usage_accessors(self, edge):
        node = edge.nodes[0]
        assert edge.mem_mb(node) == pytest.approx(edge.mem_bytes(node) / 2**20)
        assert edge.max_mem_mb == pytest.approx(edge.max_mem_bytes / 2**20)
