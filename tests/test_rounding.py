"""Tests for the Fig. 9 randomized-rounding algorithms."""

import random

import pytest

from repro.core.nips_milp import solve_exact, solve_relaxation
from repro.core.rounding import (
    RoundingVariant,
    best_of_roundings,
    finish_basic,
    greedy_fill,
    round_enablement,
    rounded_deployment,
)
from tests.test_nips_milp import small_problem


@pytest.fixture(scope="module")
def problem():
    return small_problem(num_rules=6, cam=2.0, seed=9, num_nodes=6)


@pytest.fixture(scope="module")
def relaxed(problem):
    return solve_relaxation(problem)


class TestRoundEnablement:
    def test_binary_output(self, problem, relaxed):
        e_hat, d_hat, trials = round_enablement(problem, relaxed, random.Random(0))
        assert set(e_hat.values()) <= {0, 1}
        assert trials >= 1

    def test_cam_repaired(self, problem, relaxed):
        for seed in range(5):
            e_hat, _, _ = round_enablement(problem, relaxed, random.Random(seed))
            for node in problem.topology.node_names:
                used = sum(
                    problem.rules[i].cam_req
                    for (i, n), v in e_hat.items()
                    if n == node and v
                )
                assert used <= problem.topology.node(node).cam_capacity + 1e-9

    def test_d_respects_e(self, problem, relaxed):
        e_hat, d_hat, _ = round_enablement(problem, relaxed, random.Random(1))
        for (i, pair, node), value in d_hat.items():
            if not e_hat.get((i, node), 0):
                assert value == 0.0


class TestVariants:
    @pytest.mark.parametrize("variant", list(RoundingVariant))
    def test_all_variants_feasible(self, problem, relaxed, variant):
        result = rounded_deployment(
            problem, variant, random.Random(3), relaxed=relaxed
        )
        # rounded_deployment itself asserts feasibility; double-check.
        assert problem.check_feasible(result.solution.e, result.solution.d) == []

    @pytest.mark.parametrize("variant", list(RoundingVariant))
    def test_never_exceeds_lp_bound(self, problem, relaxed, variant):
        result = rounded_deployment(
            problem, variant, random.Random(4), relaxed=relaxed
        )
        assert result.solution.objective <= relaxed.objective + 1e-6
        assert 0.0 <= result.fraction_of_lp <= 1.0 + 1e-9

    def test_lp_resolve_beats_basic_scaling(self, problem, relaxed):
        """Section 3.3: re-solving the LP after rounding can only help
        relative to the conservative scaling."""
        basic = best_of_roundings(
            problem, RoundingVariant.BASIC, iterations=5, seed=7, relaxed=relaxed
        )
        lp = best_of_roundings(
            problem, RoundingVariant.LP, iterations=5, seed=7, relaxed=relaxed
        )
        assert lp.solution.objective >= basic.solution.objective - 1e-9

    def test_greedy_beats_plain_lp(self, problem, relaxed):
        lp = best_of_roundings(
            problem, RoundingVariant.LP, iterations=5, seed=7, relaxed=relaxed
        )
        greedy = best_of_roundings(
            problem, RoundingVariant.GREEDY_LP, iterations=5, seed=7, relaxed=relaxed
        )
        assert greedy.solution.objective >= lp.solution.objective - 1e-9

    def test_greedy_near_exact_on_small_instance(self, problem, relaxed):
        """On a tiny instance the greedy pipeline should approach the
        true integer optimum (Fig. 10b shows >=92% of even OptLP)."""
        exact = solve_exact(problem)
        greedy = best_of_roundings(
            problem, RoundingVariant.GREEDY_LP, iterations=8, seed=11, relaxed=relaxed
        )
        assert exact.feasible
        assert greedy.solution.objective >= 0.85 * exact.objective

    def test_exact_never_below_rounded(self, problem, relaxed):
        exact = solve_exact(problem)
        greedy = best_of_roundings(
            problem, RoundingVariant.GREEDY_LP, iterations=8, seed=11, relaxed=relaxed
        )
        assert exact.objective >= greedy.solution.objective - 1e-6


class TestGreedyFill:
    def test_fills_to_capacity(self, problem):
        filled = greedy_fill(problem, {})
        for node in problem.topology.node_names:
            used = sum(
                problem.rules[i].cam_req
                for (i, n), v in filled.items()
                if n == node and v
            )
            cap = problem.topology.node(node).cam_capacity
            assert used <= cap + 1e-9
            # With unit cam_req and more rules than capacity, the fill
            # should use every slot.
            assert used == pytest.approx(min(cap, problem.num_rules))

    def test_preserves_existing_enablement(self, problem):
        seeded = {(0, problem.topology.node_names[0]): 1}
        filled = greedy_fill(problem, seeded)
        assert filled[(0, problem.topology.node_names[0])] == 1


class TestBestOfRoundings:
    def test_best_is_max_over_iterations(self, problem, relaxed):
        singles = [
            rounded_deployment(
                problem, RoundingVariant.LP, random.Random(100 + k), relaxed=relaxed
            ).solution.objective
            for k in range(4)
        ]
        best = best_of_roundings(
            problem, RoundingVariant.LP, iterations=8, seed=42, relaxed=relaxed
        )
        # The best over 8 fresh draws is at least competitive with any
        # single observed draw's ballpark (sanity, not exact equality).
        assert best.solution.objective >= min(singles) - 1e-9

    def test_deterministic_given_seed(self, problem, relaxed):
        a = best_of_roundings(problem, RoundingVariant.LP, iterations=3, seed=5, relaxed=relaxed)
        b = best_of_roundings(problem, RoundingVariant.LP, iterations=3, seed=5, relaxed=relaxed)
        assert a.solution.objective == pytest.approx(b.solution.objective)
