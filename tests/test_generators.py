"""Tests for the extra topology generators, including end-to-end
planning on each family."""

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet
from repro.topology.generators import leaf_spine, ring, waxman
from repro.traffic import GeneratorConfig, TrafficGenerator


class TestWaxman:
    def test_connected_and_sized(self):
        for size in (5, 15, 30):
            topo = waxman(size, seed=size)
            assert len(topo) == size  # constructor validates connectivity

    def test_deterministic(self):
        a, b = waxman(12, seed=4), waxman(12, seed=4)
        assert [(l.a, l.b) for l in a.links] == [(l.a, l.b) for l in b.links]

    def test_denser_with_alpha(self):
        sparse = waxman(20, seed=1, alpha=0.1)
        dense = waxman(20, seed=1, alpha=0.9)
        assert len(dense.links) > len(sparse.links)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            waxman(1)


class TestRing:
    def test_every_node_degree_two(self):
        topo = ring(8)
        for name in topo.node_names:
            assert topo.degree(name) == 2

    def test_link_count(self):
        assert len(ring(11).links) == 11

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ring(2)

    def test_long_paths(self):
        paths = PathSet(ring(10))
        assert paths.mean_path_length() > 3.0


class TestLeafSpine:
    def test_structure(self):
        topo = leaf_spine(6, num_spines=2)
        assert len(topo) == 8
        assert len(topo.links) == 12
        for s in range(2):
            assert topo.degree(f"spine{s:02d}") == 6

    def test_leaf_to_leaf_three_hops(self):
        topo = leaf_spine(6, num_spines=2)
        paths = PathSet(topo)
        for i in range(6):
            for j in range(6):
                if i == j:
                    continue
                path = paths.path(f"leaf{i:02d}", f"leaf{j:02d}")
                assert len(path) == 3
                assert path.nodes[1].startswith("spine")

    def test_spines_carry_no_gravity_traffic(self):
        from repro.topology.gravity import gravity_fractions

        topo = leaf_spine(4, num_spines=2)
        fractions = gravity_fractions(topo.populations)
        spine_mass = sum(
            f
            for (src, dst), f in fractions.items()
            if src.startswith("spine") or dst.startswith("spine")
        )
        assert spine_mass < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(1)


class TestPlanningOnEachFamily:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: waxman(10, seed=2),
            lambda: ring(8, seed=2),
            lambda: leaf_spine(5, num_spines=2, seed=2),
        ],
        ids=["waxman", "ring", "leaf-spine"],
    )
    def test_full_pipeline(self, factory):
        topo = factory().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=3))
        sessions = generator.generate(600)
        deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
        assert deployment.objective > 0
        from repro.core.manifest import verify_manifests

        verify_manifests(deployment.units, deployment.manifests)

    def test_ring_coordination_gain_large(self):
        """On a ring, transit concentration makes coordination's CPU
        win especially pronounced — long paths mean many helpers."""
        from repro.nids.emulation import Traffic, run_emulation

        topo = ring(10, seed=5).set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=5))
        sessions = generator.generate(1500)
        deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
        traffic = Traffic.materialized(generator, sessions)
        edge = run_emulation(traffic, STANDARD_MODULES)
        coord = run_emulation(traffic, deployment)
        assert coord.max_cpu < edge.max_cpu
