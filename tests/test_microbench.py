"""Tests for the Fig. 5 microbenchmark harness and its paper bands."""

import pytest

from repro.nids.microbench import (
    MICROBENCH_ORDER,
    format_microbench_table,
    run_microbenchmark,
)


@pytest.fixture(scope="module")
def rows():
    return run_microbenchmark(num_sessions=4000, runs=2)


class TestStructure:
    def test_all_rows_present_in_order(self, rows):
        assert [r.module for r in rows] == list(MICROBENCH_ORDER)

    def test_stats_consistent(self, rows):
        for row in rows:
            for stats in (row.cpu_policy, row.cpu_event, row.mem_policy, row.mem_event):
                assert stats.minimum <= stats.mean <= stats.maximum

    def test_table_renders(self, rows):
        table = format_microbench_table(rows)
        assert "baseline" in table
        assert "signature" in table


class TestPaperBands:
    """The Fig. 5 bands: ~2% for baseline/signature/blaster/synflood,
    ~10% for scan/tftp, large only for HTTP/IRC/Login under policy-
    engine checks, and memory overhead at most 6%."""

    def _row(self, rows, name):
        return next(r for r in rows if r.module == name)

    @pytest.mark.parametrize("module", ["baseline", "signature", "blaster", "synflood"])
    def test_cheap_modules_around_two_percent(self, rows, module):
        row = self._row(rows, module)
        assert row.cpu_policy.mean < 0.06
        assert row.cpu_event.mean < 0.06

    @pytest.mark.parametrize("module", ["scan", "tftp"])
    def test_policy_stage_modules_near_ten_percent(self, rows, module):
        row = self._row(rows, module)
        assert 0.05 < row.cpu_policy.mean < 0.15
        # Checks cannot be hoisted: both variants cost the same.
        assert row.cpu_event.mean == pytest.approx(row.cpu_policy.mean, rel=1e-6)

    @pytest.mark.parametrize("module", ["http", "irc", "login"])
    def test_hoistable_modules_expensive_in_policy_engine(self, rows, module):
        row = self._row(rows, module)
        assert row.cpu_policy.mean > 0.05
        assert row.cpu_event.mean < 0.05
        assert row.cpu_event.mean < row.cpu_policy.mean

    def test_memory_overhead_at_most_six_percent(self, rows):
        for row in rows:
            assert row.mem_policy.mean <= 0.06
            assert row.mem_event.mean <= 0.06

    def test_all_overheads_nonnegative(self, rows):
        for row in rows:
            assert row.cpu_policy.minimum >= 0.0
            assert row.cpu_event.minimum >= 0.0
            assert row.mem_policy.minimum >= 0.0
            assert row.mem_event.minimum >= 0.0
