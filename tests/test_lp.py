"""Tests for the LP modeling layer, solver backend, and MILP search."""

import math

import pytest

from repro.lp import (
    LinearProgram,
    LinExpr,
    Relation,
    Sense,
    SolveStatus,
    SolverError,
    linear_sum,
    solve,
    solve_milp,
    solve_or_raise,
)


class TestLinExpr:
    def test_variable_arithmetic(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = 2 * x + y - 3
        assert expr.coefficients == {x.index: 2.0, y.index: 1.0}
        assert expr.constant == -3.0

    def test_negation_and_subtraction(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = -(x - 5)
        assert expr.coefficients[x.index] == -1.0
        assert expr.constant == 5.0

    def test_rsub(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = 10 - x
        assert expr.coefficients[x.index] == -1.0
        assert expr.constant == 10.0

    def test_division(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        expr = (4 * x) / 2
        assert expr.coefficients[x.index] == pytest.approx(2.0)

    def test_evaluate(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        expr = 3 * x + 2 * y + 1
        assert expr.evaluate([2.0, 5.0]) == pytest.approx(17.0)

    def test_linear_sum_merges_terms(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        total = linear_sum([x, x * 2, 5, LinExpr({}, 1.0)])
        assert total.coefficients[x.index] == pytest.approx(3.0)
        assert total.constant == pytest.approx(6.0)

    def test_relations_build_constraints(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        le = x <= 5
        ge = x >= 1
        eq = x.equals(3)
        assert le.relation is Relation.LE
        assert ge.relation is Relation.GE
        assert eq.relation is Relation.EQ


class TestLinearProgram:
    def test_duplicate_names_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError):
            lp.add_variable("x")

    def test_variable_by_name(self):
        lp = LinearProgram()
        lp.add_variable("a")
        b = lp.add_variable("b")
        assert lp.variable_by_name("b").index == b.index

    def test_is_feasible(self):
        lp = LinearProgram()
        x = lp.add_variable("x", ub=10)
        lp.add_constraint(x >= 2)
        assert lp.is_feasible([5.0])
        assert not lp.is_feasible([1.0])
        assert not lp.is_feasible([11.0])
        assert not lp.is_feasible([])

    def test_constraint_slack(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        c = lp.add_constraint(x <= 4)
        assert c.slack([3.0]) == pytest.approx(1.0)
        assert c.slack([5.0]) == pytest.approx(-1.0)

    def test_add_constraint_type_check(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        with pytest.raises(TypeError):
            lp.add_constraint(x)  # type: ignore[arg-type]


class TestSolver:
    def test_minimize(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lb=1.0)
        y = lp.add_variable("y", lb=2.0)
        lp.set_objective(x + y, Sense.MINIMIZE)
        solution = solve_or_raise(lp)
        assert solution.objective == pytest.approx(3.0)

    def test_maximize_reports_model_sense(self):
        lp = LinearProgram()
        x = lp.add_variable("x", ub=4.0)
        y = lp.add_variable("y", ub=4.0)
        lp.add_constraint(x + y <= 5.0)
        lp.set_objective(3 * x + 2 * y, Sense.MAXIMIZE)
        solution = solve_or_raise(lp)
        assert solution.objective == pytest.approx(14.0)
        assert solution.value(x) == pytest.approx(4.0)
        assert solution.value(y) == pytest.approx(1.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint((x + y).equals(10.0))
        lp.set_objective(x, Sense.MINIMIZE)
        solution = solve_or_raise(lp)
        assert solution.value(x) + solution.value(y) == pytest.approx(10.0)
        assert solution.value(x) == pytest.approx(0.0)

    def test_infeasible(self):
        lp = LinearProgram()
        x = lp.add_variable("x", ub=1.0)
        lp.add_constraint(x >= 2.0)
        lp.set_objective(x, Sense.MINIMIZE)
        assert solve(lp).status is SolveStatus.INFEASIBLE
        with pytest.raises(SolverError):
            solve_or_raise(lp)

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        lp.set_objective(x, Sense.MAXIMIZE)
        assert solve(lp).status is SolveStatus.UNBOUNDED

    def test_value_by_name_and_dict(self):
        lp = LinearProgram()
        x = lp.add_variable("price", lb=3.0)
        lp.set_objective(x, Sense.MINIMIZE)
        solution = solve_or_raise(lp)
        assert solution.value_by_name("price") == pytest.approx(3.0)
        assert solution.as_dict()["price"] == pytest.approx(3.0)

    def test_solution_satisfies_model(self):
        lp = LinearProgram()
        x = lp.add_variable("x", ub=7)
        y = lp.add_variable("y", ub=7)
        lp.add_constraint(2 * x + y <= 10)
        lp.add_constraint(x + 3 * y <= 15)
        lp.set_objective(x + y, Sense.MAXIMIZE)
        solution = solve_or_raise(lp)
        assert lp.is_feasible(solution.values)

    def test_solve_seconds_recorded(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lb=1.0)
        lp.set_objective(x, Sense.MINIMIZE)
        assert solve_or_raise(lp).solve_seconds >= 0.0


class TestMILP:
    def _knapsack(self, values, weights, capacity):
        lp = LinearProgram("knapsack")
        variables = [lp.add_variable(f"b{i}", binary=True) for i in range(len(values))]
        lp.add_constraint(
            linear_sum(v * w for v, w in zip(variables, weights)) <= capacity
        )
        lp.set_objective(
            linear_sum(v * value for v, value in zip(variables, values)),
            Sense.MAXIMIZE,
        )
        return lp, variables

    def test_knapsack_exact(self):
        lp, _ = self._knapsack([6, 5, 4], [5, 4, 3], 8)
        result = solve_milp(lp)
        assert result.objective == pytest.approx(10.0)
        assert result.proved_optimal

    def test_binary_values_integral(self):
        lp, variables = self._knapsack([10, 7, 3, 2], [4, 3, 2, 1], 6)
        result = solve_milp(lp)
        for var in variables:
            value = result.values[var.index]
            assert abs(value - round(value)) < 1e-6

    def test_matches_bruteforce(self):
        import itertools

        values, weights, capacity = [7, 9, 4, 6, 3], [3, 5, 2, 4, 1], 9
        best = max(
            sum(v for v, pick in zip(values, picks) if pick)
            for picks in itertools.product([0, 1], repeat=5)
            if sum(w for w, pick in zip(weights, picks) if pick) <= capacity
        )
        lp, _ = self._knapsack(values, weights, capacity)
        assert solve_milp(lp).objective == pytest.approx(best)

    def test_milp_never_beats_relaxation(self):
        lp, _ = self._knapsack([6, 5, 4], [5, 4, 3], 8)
        relaxed = solve_or_raise(lp)
        integral = solve_milp(lp)
        assert integral.objective <= relaxed.objective + 1e-6

    def test_infeasible_milp(self):
        lp = LinearProgram()
        b = lp.add_variable("b", binary=True)
        lp.add_constraint(b >= 2.0)
        lp.set_objective(b, Sense.MAXIMIZE)
        result = solve_milp(lp)
        assert result.status is SolveStatus.INFEASIBLE

    def test_minimization_milp(self):
        lp = LinearProgram()
        a = lp.add_variable("a", binary=True)
        b = lp.add_variable("b", binary=True)
        lp.add_constraint(a + b >= 1.0)
        lp.set_objective(3 * a + 2 * b, Sense.MINIMIZE)
        result = solve_milp(lp)
        assert result.objective == pytest.approx(2.0)
        assert round(result.value_by_name("b")) == 1

    def test_continuous_variables_stay_fractional(self):
        lp = LinearProgram()
        b = lp.add_variable("b", binary=True)
        x = lp.add_variable("x", ub=10.0)
        lp.add_constraint(x <= 2.5 + 5 * b)
        lp.set_objective(x, Sense.MAXIMIZE)
        result = solve_milp(lp)
        assert result.objective == pytest.approx(7.5)


class TestDuals:
    def test_shadow_price_of_binding_constraint(self):
        lp = LinearProgram()
        x = lp.add_variable("x", ub=4.0)
        y = lp.add_variable("y", ub=4.0)
        lp.add_constraint(x + y <= 5.0, name="budget")
        lp.set_objective(3 * x + 2 * y, Sense.MAXIMIZE)
        solution = solve_or_raise(lp)
        # Relaxing the budget by 1 admits one more unit of y (+2).
        assert solution.dual_by_name("budget") == pytest.approx(2.0)

    def test_nonbinding_constraint_zero_dual(self):
        lp = LinearProgram()
        x = lp.add_variable("x", ub=1.0)
        lp.add_constraint(x <= 100.0, name="slack")
        lp.set_objective(x, Sense.MAXIMIZE)
        solution = solve_or_raise(lp)
        assert solution.dual_by_name("slack") == pytest.approx(0.0)

    def test_unknown_name_raises(self):
        lp = LinearProgram()
        x = lp.add_variable("x", lb=1.0)
        lp.set_objective(x, Sense.MINIMIZE)
        solution = solve_or_raise(lp)
        with pytest.raises(KeyError):
            solution.dual_by_name("nonexistent")

    def test_equality_dual_reported(self):
        lp = LinearProgram()
        x = lp.add_variable("x")
        y = lp.add_variable("y")
        lp.add_constraint((x + y).equals(10.0), name="balance")
        lp.set_objective(2 * x + y, Sense.MINIMIZE)
        solution = solve_or_raise(lp)
        # Cheapest way to satisfy the equality is all-y (cost 1/unit).
        assert solution.dual_by_name("balance") == pytest.approx(1.0)
