"""Tests for traffic/routing change handling (Section 5)."""

import dataclasses

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.core.nids_lp import solve_nids_lp
from repro.core.reconfigure import conservative_units, plan_transition
from repro.core.units import build_units
from repro.nids.modules import SIGNATURE, STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def world():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=111))
    old_sessions = generator.generate(2000)
    # Traffic change: a different seed shifts the mix and volumes.
    shifted = TrafficGenerator(
        topo, paths, config=GeneratorConfig(seed=222)
    ).generate(3000)
    old = plan_deployment(topo, paths, STANDARD_MODULES, old_sessions)
    new = plan_deployment(topo, paths, STANDARD_MODULES, shifted)
    return topo, paths, generator, old_sessions, old, new


class TestConservativeUnits:
    def test_volumes_inflated(self, world):
        _, paths, _, sessions, _, _ = world
        units = build_units(STANDARD_MODULES, sessions, paths)
        inflated = conservative_units(units, headroom=1.5)
        for base, conservative in zip(units, inflated):
            assert conservative.pkts == pytest.approx(base.pkts * 1.5)
            assert conservative.cpu_work == pytest.approx(base.cpu_work * 1.5)
            assert conservative.eligible == base.eligible

    def test_objective_scales_with_headroom(self, world):
        topo, paths, _, sessions, _, _ = world
        units = build_units(STANDARD_MODULES, sessions, paths)
        base = solve_nids_lp(units, topo).objective
        padded = solve_nids_lp(conservative_units(units, 1.3), topo).objective
        assert padded == pytest.approx(base * 1.3, rel=1e-4)

    def test_invalid_headroom(self, world):
        _, paths, _, sessions, _, _ = world
        units = build_units(STANDARD_MODULES, sessions, paths)
        with pytest.raises(ValueError):
            conservative_units(units, headroom=0.9)

    def test_nonfinite_headroom_rejected(self, world):
        _, paths, _, sessions, _, _ = world
        units = build_units(STANDARD_MODULES, sessions, paths)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                conservative_units(units, headroom=bad)

    def test_unit_headroom_is_identity_fast_path(self, world):
        """headroom == 1.0 must be a no-op that reuses the unit objects
        (no rebuild churn on the common planning path)."""
        _, paths, _, sessions, _, _ = world
        units = build_units(STANDARD_MODULES, sessions, paths)
        result = conservative_units(units, headroom=1.0)
        assert result == list(units)
        assert all(a is b for a, b in zip(result, units))

    def test_all_resource_fields_scaled(self, world):
        """Every resource field — pkts, items, cpu_work, mem_bytes —
        must scale consistently, not just the CPU pair."""
        _, paths, _, sessions, _, _ = world
        units = build_units(STANDARD_MODULES, sessions, paths)
        inflated = conservative_units(units, headroom=2.0)
        for base, conservative in zip(units, inflated):
            assert conservative.items == pytest.approx(base.items * 2.0)
            assert conservative.mem_bytes == pytest.approx(base.mem_bytes * 2.0)
            assert conservative.class_name == base.class_name
            assert conservative.key == base.key


class TestTransitionPlan:
    def test_new_connections_follow_new_manifest(self, world):
        topo, _, _, _, old, new = world
        plan = plan_transition(old, new)
        unit = new.units[0]
        for probe in (0.1, 0.5, 0.9):
            holders = [
                node
                for node in topo.node_names
                if plan.responsible_for_new(node, unit.class_name, unit.key, probe)
            ]
            expected = [
                node
                for node in topo.node_names
                if new.manifests[node].contains(unit.class_name, unit.key, probe)
            ]
            assert holders == expected

    def test_existing_connections_never_dropped(self, world):
        """Mid-transition, every point of the hash space has at least
        its old holder still responsible — correctness is preserved."""
        topo, _, _, _, old, new = world
        plan = plan_transition(old, new)
        for unit in old.units[:40]:
            for probe in (0.05, 0.35, 0.65, 0.95):
                old_holders = [
                    node
                    for node in unit.eligible
                    if old.manifests[node].contains(unit.class_name, unit.key, probe)
                ]
                assert all(
                    plan.responsible_for_existing(
                        node, unit.class_name, unit.key, probe
                    )
                    for node in old_holders
                )

    def test_duplication_bounded_by_one(self, world):
        _, _, _, _, old, new = world
        plan = plan_transition(old, new)
        for unit in old.units[:60]:
            duplicated = plan.duplicated_fraction(unit.class_name, unit.key)
            assert -1e-9 <= duplicated <= 1.0 + 1e-9

    def test_identical_deployments_no_duplication(self, world):
        _, _, _, _, old, _ = world
        plan = plan_transition(old, old)
        for unit in old.units[:60]:
            assert plan.duplicated_fraction(unit.class_name, unit.key) == pytest.approx(
                0.0, abs=1e-9
            )

    def test_handoffs_mass_conserved(self, world):
        """For units that exist in both deployments, the per-unit
        handoff mass equals the duplicated mass: every duplicated point
        is exactly one donor->receiver transfer.  (Units that vanish
        with the new traffic mix have no receiver — their old state
        simply expires.)"""
        _, _, _, _, old, new = world
        plan = plan_transition(old, new)
        transfers = plan.handoffs()
        per_unit_transfer = {}
        for class_name, key, _donor, _receiver, mass in transfers:
            ident = (class_name, key)
            per_unit_transfer[ident] = per_unit_transfer.get(ident, 0.0) + mass
        common = {(u.class_name, u.key) for u in old.units} & {
            (u.class_name, u.key) for u in new.units
        }
        assert common
        for class_name, key in list(common)[:80]:
            duplicated = plan.duplicated_fraction(class_name, key)
            assert per_unit_transfer.get((class_name, key), 0.0) == pytest.approx(
                duplicated, abs=1e-6
            )

    def test_handoffs_sorted_descending(self, world):
        _, _, _, _, old, new = world
        transfers = plan_transition(old, new).handoffs()
        masses = [mass for *_ignored, mass in transfers]
        assert masses == sorted(masses, reverse=True)

    def test_node_set_mismatch_rejected(self, world):
        topo, paths, _, sessions, old, _ = world
        from repro.topology import geant

        other_topo = geant().set_uniform_capacities(cpu=1.0, mem=1.0)
        other_paths = PathSet(other_topo)
        other_generator = TrafficGenerator(
            other_topo, other_paths, config=GeneratorConfig(seed=5)
        )
        other = plan_deployment(
            other_topo, other_paths, STANDARD_MODULES, other_generator.generate(500)
        )
        with pytest.raises(ValueError):
            plan_transition(old, other)

    def test_orphaned_fraction_zero_on_stable_routing(self, world):
        """Without a routing change, old holders remain on the paths,
        so no state transfer is forced by unreachability."""
        _, _, _, _, old, new = world
        plan = plan_transition(old, new)
        for unit in new.units[:40]:
            assert plan.orphaned_fraction(
                unit.class_name, unit.key
            ) == pytest.approx(0.0, abs=1e-9)


class TestRoutingChange:
    def test_orphaned_mass_detected_after_reroute(self):
        """An actual routing change: removing a link reroutes paths, so
        an old holder can drop off a unit's new eligible set — the plan
        must surface that mass as needing a state transfer (§5)."""
        from repro.topology import LinkSpec, NodeSpec, Topology

        def build(drop_link):
            nodes = [NodeSpec(n, population=1.0 + i) for i, n in
                     enumerate(["a", "b", "c", "d"])]
            links = [
                LinkSpec("a", "b", 1.0),
                LinkSpec("b", "c", 1.0),
                LinkSpec("c", "d", 1.0),
                LinkSpec("a", "d", 5.0),  # backup path
            ]
            if drop_link:
                links = [l for l in links if {l.a, l.b} != {"b", "c"}]
            return Topology("square", nodes, links)

        before = build(drop_link=False).set_uniform_capacities(cpu=1.0, mem=1.0)
        after = build(drop_link=True).set_uniform_capacities(cpu=1.0, mem=1.0)
        # Make b the preferred analyzer so the old plan stores state
        # there; the reroute then strands that state.
        before.scale_capacity("b", cpu_factor=20.0, mem_factor=20.0)
        paths_before = PathSet(before)
        paths_after = PathSet(after)
        # a->c goes a,b,c before; after losing b-c it reroutes a,d,c.
        assert paths_before.path("a", "c").nodes == ("a", "b", "c")
        assert "b" not in paths_after.path("a", "c").nodes

        generator = TrafficGenerator(
            before, paths_before, config=GeneratorConfig(seed=7)
        )
        sessions = generator.generate(800)
        old = plan_deployment(before, paths_before, STANDARD_MODULES, sessions)
        new = plan_deployment(after, paths_after, STANDARD_MODULES, sessions)
        plan = plan_transition(old, new)

        orphaned = [
            (unit.ident, plan.orphaned_fraction(unit.class_name, unit.key))
            for unit in new.units
        ]
        total_orphaned = sum(mass for _, mass in orphaned)
        # Node b held path-scoped ranges for a<->c traffic before the
        # reroute; that mass is now unreachable at b.
        assert total_orphaned > 0
