"""Property tests: vectorized Bob hash is bit-identical to the scalar.

The batch dispatch engine is only sound if the NumPy lookup3 produces
the *exact* digests of the pure-Python reference for every key — a
single differing bit would route a session to a different node.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.bobhash import bob_hash, hash_unit
from repro.hashing.keys import Aggregation, key_for
from repro.hashing.vectorized import (
    bob_hash_batch,
    hash_unit_batch,
    key_hash_unit_batch,
    pack_key_batch,
)

HOSTS = st.integers(min_value=0, max_value=2**64 - 1)
PORTS = st.integers(min_value=0, max_value=2**17)  # beyond 16 bits: masked
PROTOS = st.integers(min_value=0, max_value=300)  # beyond 8 bits: masked
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestRawBytes:
    @given(
        rows=st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=20),
        seed=SEEDS,
    )
    @settings(max_examples=150, deadline=None)
    def test_digests_bit_identical(self, rows, seed):
        """Row-wise batch digests equal the scalar digest of each row."""
        length = max(len(r) for r in rows)
        padded = [r.ljust(length, b"\0") for r in rows]
        matrix = np.frombuffer(b"".join(padded), dtype=np.uint8).reshape(
            len(rows), length
        )
        got = bob_hash_batch(matrix, seed)
        expected = np.array([bob_hash(r, seed) for r in padded], dtype=np.uint32)
        assert (got == expected).all()

    def test_every_tail_length(self):
        """Exercise every lookup3 tail case (0..12) and the block loop."""
        rng = np.random.default_rng(7)
        for length in range(0, 30):
            matrix = rng.integers(0, 256, size=(16, length), dtype=np.uint8)
            got = bob_hash_batch(matrix, 99)
            expected = np.array(
                [bob_hash(bytes(row), 99) for row in matrix], dtype=np.uint32
            )
            assert (got == expected).all(), f"length {length}"

    def test_unit_mapping_bit_identical(self):
        rng = np.random.default_rng(11)
        matrix = rng.integers(0, 256, size=(64, 22), dtype=np.uint8)
        got = hash_unit_batch(matrix, 3)
        expected = np.array([hash_unit(bytes(row), 3) for row in matrix])
        assert (got == expected).all()
        assert (got >= 0.0).all() and (got < 1.0).all()

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            bob_hash_batch(np.zeros(8, dtype=np.uint8))


class TestKeyPacking:
    @given(
        src=st.lists(HOSTS, min_size=1, max_size=12),
        dst=st.lists(HOSTS, min_size=1, max_size=12),
        sport=PORTS,
        dport=PORTS,
        proto=PROTOS,
        seed=SEEDS,
    )
    @settings(max_examples=100, deadline=None)
    def test_all_aggregations_match_scalar(
        self, src, dst, sport, dport, proto, seed
    ):
        n = min(len(src), len(dst))
        srcs = np.array(src[:n], dtype=np.uint64)
        dsts = np.array(dst[:n], dtype=np.uint64)
        sports = np.full(n, sport, dtype=np.int64)
        dports = np.full(n, dport, dtype=np.int64)
        protos = np.full(n, proto, dtype=np.int64)
        for aggregation in Aggregation:
            matrix = pack_key_batch(aggregation, srcs, dsts, sports, dports, protos)
            for i in range(n):
                expected_key = key_for(
                    aggregation, int(srcs[i]), int(dsts[i]), sport, dport, proto
                )
                assert bytes(matrix[i]) == expected_key
            got = key_hash_unit_batch(
                aggregation, srcs, dsts, sports, dports, protos, seed
            )
            expected = np.array(
                [
                    hash_unit(
                        key_for(
                            aggregation, int(srcs[i]), int(dsts[i]), sport, dport,
                            proto,
                        ),
                        seed,
                    )
                    for i in range(n)
                ]
            )
            assert (got == expected).all(), aggregation

    def test_session_key_direction_independent(self):
        """Both directions of a connection hash identically in batch."""
        src = np.array([10, 99], dtype=np.uint64)
        dst = np.array([99, 10], dtype=np.uint64)
        sport = np.array([1234, 80], dtype=np.int64)
        dport = np.array([80, 1234], dtype=np.int64)
        proto = np.array([6, 6], dtype=np.int64)
        values = key_hash_unit_batch(Aggregation.SESSION, src, dst, sport, dport, proto)
        assert values[0] == values[1]

    def test_seed_changes_digest(self):
        src = np.arange(8, dtype=np.uint64)
        args = (src, src + 1, src.astype(np.int64), src.astype(np.int64), np.full(8, 6, np.int64))
        a = key_hash_unit_batch(Aggregation.FLOW, *args, seed=0)
        b = key_hash_unit_batch(Aggregation.FLOW, *args, seed=1)
        assert (a != b).any()
