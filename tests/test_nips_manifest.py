"""Tests for NIPS rule placements and sampling manifests."""

import random

import pytest

from repro.core.nips_manifest import (
    NIPSDispatcher,
    generate_nips_manifests,
    verify_nips_manifests,
)
from repro.core.nips_milp import solve_relaxation
from repro.core.rounding import RoundingVariant, best_of_roundings
from repro.topology import random_pop_topology
from repro.traffic.generator import host_id
from repro.traffic.packet import FiveTuple, Packet, TCP
from tests.test_nips_milp import small_problem


@pytest.fixture(scope="module")
def solved():
    problem = small_problem(num_rules=6, cam=3.0, seed=31, num_nodes=6)
    best = best_of_roundings(problem, RoundingVariant.GREEDY_LP, iterations=4, seed=2)
    return problem, best.solution


@pytest.fixture(scope="module")
def manifests(solved):
    problem, solution = solved
    return generate_nips_manifests(problem, solution)


class TestGeneration:
    def test_invariants_hold(self, solved, manifests):
        problem, solution = solved
        verify_nips_manifests(problem, solution, manifests)

    def test_tcam_capacity_respected(self, solved, manifests):
        problem, _ = solved
        for node, manifest in manifests.items():
            used = sum(
                problem.rules[i].cam_req for i in manifest.enabled_rules
            )
            assert used <= problem.topology.node(node).cam_capacity + 1e-9

    def test_sampled_fractions_match_solution(self, solved, manifests):
        problem, solution = solved
        for (i, pair, node), fraction in solution.d.items():
            if fraction > 1e-9:
                held = manifests[node].sampled_fraction(i, pair)
                assert held == pytest.approx(fraction, abs=1e-6)

    def test_at_most_one_node_per_hash_point(self, solved, manifests):
        problem, _ = solved
        probes = (0.1, 0.4, 0.7, 0.95)
        for pair in problem.pairs:
            for rule in problem.rules:
                for probe in probes:
                    holders = [
                        node
                        for node, manifest in manifests.items()
                        if manifest.contains(rule.index, pair, probe)
                    ]
                    assert len(holders) <= 1

    def test_oversampled_solution_rejected(self, solved):
        problem, solution = solved
        import dataclasses

        pair = problem.pairs[0]
        nodes = problem.paths[pair].nodes
        broken = dataclasses.replace(
            solution,
            d={
                **solution.d,
                (0, pair, nodes[0]): 0.8,
                (0, pair, nodes[-1]): 0.8,
            },
        )
        with pytest.raises(ValueError):
            generate_nips_manifests(problem, broken)

    def test_verifier_catches_unenabled_sampling(self, solved, manifests):
        problem, solution = solved
        import copy

        broken = copy.deepcopy(dict(manifests))
        node, manifest = next(
            (n, m) for n, m in broken.items() if m.ranges
        )
        (i, pair), pieces = next(iter(manifest.ranges.items()))
        manifest.enabled_rules = tuple(
            r for r in manifest.enabled_rules if r != i
        )
        with pytest.raises(ValueError):
            verify_nips_manifests(problem, solution, broken)


class TestDispatcher:
    def test_rules_applied_are_enabled(self, solved, manifests):
        problem, _ = solved
        names = problem.topology.node_names
        rng = random.Random(3)
        for node in names[:3]:
            dispatcher = NIPSDispatcher(manifests[node], names)
            for _ in range(50):
                src = host_id(rng.randrange(len(names)), rng.randrange(100))
                dst = host_id(rng.randrange(len(names)), rng.randrange(100))
                packet = Packet(
                    FiveTuple(src, dst, rng.randrange(1024, 65535), 80, TCP), 0.0
                )
                for rule_index in dispatcher.rules_to_apply(packet):
                    assert rule_index in manifests[node].enabled_rules

    def test_flow_consistency(self, solved, manifests):
        """All packets of one flow reach the same decision."""
        problem, _ = solved
        names = problem.topology.node_names
        node = names[0]
        dispatcher = NIPSDispatcher(manifests[node], names)
        flow = FiveTuple(host_id(0, 5), host_id(2, 9), 5555, 80, TCP)
        decisions = {
            tuple(dispatcher.rules_to_apply(Packet(flow, float(ts))))
            for ts in range(5)
        }
        assert len(decisions) == 1

    def test_empirical_fraction_tracks_d(self, solved, manifests):
        """Across many flows on one pair, the share a node filters
        approximates its assigned d (hash uniformity)."""
        problem, solution = solved
        names = problem.topology.node_names
        # Find the largest assigned (rule, pair, node).
        key = max(solution.d, key=solution.d.get)
        i, pair, node = key
        fraction = solution.d[key]
        if fraction < 0.2:
            pytest.skip("no substantial assignment to test against")
        dispatcher = NIPSDispatcher(manifests[node], names)
        src_index = names.index(pair[0])
        dst_index = names.index(pair[1])
        rng = random.Random(7)
        hits = 0
        trials = 600
        for _ in range(trials):
            packet = Packet(
                FiveTuple(
                    host_id(src_index, rng.randrange(5000)),
                    host_id(dst_index, rng.randrange(5000)),
                    rng.randrange(1024, 65535),
                    80,
                    TCP,
                ),
                0.0,
            )
            if i in dispatcher.rules_to_apply(packet):
                hits += 1
        assert hits / trials == pytest.approx(fraction, abs=0.08)
