"""End-to-end integration tests across the full pipelines."""

import random

import pytest

import repro
from repro.core import (
    RoundingVariant,
    best_of_roundings,
    plan_deployment,
    solve_relaxation,
)
from repro.core.manifest import verify_manifests
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig
from repro.nids.modules import STANDARD_MODULES
from repro.nips.enforcement import enforce
from repro.topology import PathSet, geant, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator, attack_heavy_profile
from tests.test_nips_milp import small_problem


class TestQuickstart:
    def test_quick_nids_deployment(self):
        deployment = repro.quick_nids_deployment(num_sessions=800, seed=2)
        assert deployment.objective > 0
        verify_manifests(deployment.units, deployment.manifests)
        assert len(deployment.manifests) == 11


class TestNIDSPipelineOnGeant:
    """The full NIDS pipeline on a different topology end to end."""

    def test_geant_deployment(self):
        topo = geant().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(
            topo, paths, config=GeneratorConfig(seed=91)
        )
        sessions = generator.generate(2500)
        deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
        traffic = Traffic.materialized(generator, sessions)
        edge = run_emulation(traffic, STANDARD_MODULES)
        coord = run_emulation(traffic, deployment)
        assert coord.max_cpu < edge.max_cpu
        # Complete coverage: aggregate module work must be preserved.
        expected = sum(
            spec.session_cpu(s) for spec in STANDARD_MODULES for s in sessions
        )
        measured = sum(
            sum(r.module_cpu.values()) for r in coord.reports.values()
        )
        assert measured == pytest.approx(expected, rel=1e-6)


class TestAttackHeavyWorkload:
    def test_deployment_under_attack_profile(self):
        topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(
            topo,
            paths,
            profile=attack_heavy_profile(),
            config=GeneratorConfig(seed=92),
        )
        sessions = generator.generate(2500)
        deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
        coord = run_emulation(
            Traffic.materialized(generator, sessions),
            deployment,
            config=EmulationConfig(run_detectors=True),
        )
        alerts = coord.alert_keys()
        assert alerts  # the attack-heavy mix must trip detectors
        modules_alerting = {module for module, _ in alerts}
        assert "signature" in modules_alerting


class TestNIPSPipeline:
    def test_round_then_enforce(self):
        problem = small_problem(num_rules=6, cam=2.0, seed=43, num_nodes=7)
        relaxed = solve_relaxation(problem)
        best = best_of_roundings(
            problem,
            RoundingVariant.GREEDY_LP,
            iterations=4,
            seed=7,
            relaxed=relaxed,
        )
        report = enforce(problem, best.solution)
        assert report.footprint_removed == pytest.approx(
            best.solution.objective, rel=1e-6
        )
        assert report.footprint_removed <= relaxed.objective + 1e-6
        assert report.load_within_model()
        assert best.fraction_of_lp >= 0.8  # small instances round well


class TestRedundantDeploymentEndToEnd:
    def test_r2_deployment_verifies_and_costs_more(self):
        topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=93))
        sessions = generator.generate(1200)
        base = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
        redundant = plan_deployment(
            topo, paths, STANDARD_MODULES, sessions, coverage=2.0
        )
        verify_manifests(redundant.units, redundant.manifests)
        assert redundant.objective > base.objective
