"""Tests for the static deployment-artifact verifier (REP101-REP108).

Strategy: build a known-good artifact, corrupt exactly one invariant,
and assert the verifier reports exactly the corresponding rule ID —
the property CI and the controller gate rely on to attribute failures.
"""

import json
import random

import pytest

from repro.analysis.cli import main as analysis_main
from repro.analysis.verify import (
    ManifestRejectedError,
    VERIFIER_RULES,
    check_delta,
    verify_artifact_files,
    verify_delta,
    verify_deployment,
    verify_nips,
)
from repro.core.manifest import NodeManifest, generate_manifests
from repro.core.manifest_io import (
    dump_assignment,
    dump_manifests,
    manifest_diff,
)
from repro.core.nids_lp import NIDSAssignment
from repro.core.nips_manifest import generate_nips_manifests
from repro.core.nips_milp import build_nips_problem
from repro.core.units import CoordinationUnit
from repro.hashing.ranges import HashRange
from repro.nips.rules import MatchRateMatrix, unit_rules
from repro.topology import internet2


def make_unit(nodes=("A", "B"), class_name="c", key=("k",)):
    return CoordinationUnit(
        class_name=class_name,
        key=key,
        eligible=tuple(nodes),
        pkts=1.0,
        items=1.0,
        cpu_work=1.0,
        mem_bytes=1.0,
    )


def make_assignment(unit, weights):
    return NIDSAssignment(
        fractions={
            (unit.class_name, unit.key, node): w for node, w in weights.items()
        },
        cpu_load={},
        mem_load={},
        objective=0.0,
        coverage={unit.ident: 1.0},
        solve_seconds=0.0,
    )


def good_world(split=0.6):
    """One unit split across two nodes: the minimal valid deployment."""
    unit = make_unit()
    ident = unit.ident
    manifests = {
        "A": NodeManifest("A", {ident: (HashRange(0.0, split),)}),
        "B": NodeManifest("B", {ident: (HashRange(split, 1.0),)}),
    }
    assignment = make_assignment(unit, {"A": split, "B": 1.0 - split})
    return unit, manifests, assignment


class TestDeploymentChecks:
    def test_valid_deployment_is_clean(self):
        unit, manifests, assignment = good_world()
        report = verify_deployment([unit], manifests, assignment)
        assert report.ok
        assert report.checks == (
            "partition", "on-path", "assignment", "assignment-match"
        )

    def test_coverage_gap_is_rep101(self):
        unit, manifests, _ = good_world()
        manifests["B"].entries[unit.ident] = (HashRange(0.7, 1.0),)
        report = verify_deployment([unit], manifests)
        assert report.rule_ids() == ["REP101"]

    def test_overlapping_ranges_on_one_node_is_rep102(self):
        unit, manifests, _ = good_world()
        manifests["A"].entries[unit.ident] = (
            HashRange(0.0, 0.6),
            HashRange(0.4, 0.6),
        )
        report = verify_deployment([unit], manifests)
        assert "REP102" in report.rule_ids()

    def test_top_sliver_below_one_is_rep103(self):
        # Coverage tolerates an EPSILON shortfall at the top, so a
        # 5e-10 sliver passes REP101 — but the top-snap invariant
        # (exactly 1.0) is its own rule.
        unit, manifests, _ = good_world()
        manifests["B"].entries[unit.ident] = (HashRange(0.6, 1.0 - 5e-10),)
        report = verify_deployment([unit], manifests)
        assert report.rule_ids() == ["REP103"]

    def test_off_path_mass_is_rep104(self):
        unit, manifests, _ = good_world()
        # A third node, never on the unit's forwarding path, holds mass
        # — and the partition stays exact, so REP104 fires alone.
        manifests["A"].entries[unit.ident] = (HashRange(0.0, 0.3),)
        manifests["C"] = NodeManifest("C", {unit.ident: (HashRange(0.3, 0.6),)})
        report = verify_deployment([unit], manifests)
        assert report.rule_ids() == ["REP104"]

    def test_unplanned_unit_entry_is_rep104(self):
        unit, manifests, _ = good_world()
        manifests["A"].entries[("ghost", ("g",))] = (HashRange(0.0, 0.2),)
        report = verify_deployment([unit], manifests)
        assert report.rule_ids() == ["REP104"]

    def test_assignment_sum_short_is_rep101(self):
        unit, manifests, _ = good_world()
        bad = make_assignment(unit, {"A": 0.6, "B": 0.1})
        report = verify_deployment([unit], manifests, bad)
        assert "REP101" in report.rule_ids()

    def test_assignment_off_path_is_rep104(self):
        unit, manifests, _ = good_world()
        bad = make_assignment(unit, {"A": 0.6, "B": 0.3, "Z": 0.1})
        report = verify_deployment([unit], manifests, bad)
        assert "REP104" in report.rule_ids()

    def test_manifest_vs_dstar_drift_is_rep107(self):
        unit, manifests, _ = good_world(split=0.6)
        drifted = make_assignment(unit, {"A": 0.5, "B": 0.5})
        report = verify_deployment([unit], manifests, drifted)
        assert report.rule_ids() == ["REP107"]

    def test_generated_manifests_verify_clean(self):
        # The real generation pipeline must satisfy its own verifier.
        rng = random.Random(3)
        nodes = ["n0", "n1", "n2"]
        units = [
            make_unit(nodes=tuple(nodes), key=(f"k{i}",)) for i in range(6)
        ]
        fractions = {}
        for unit in units:
            weights = [rng.random() for _ in nodes]
            total = sum(weights)
            for node, w in zip(nodes, weights):
                fractions[(unit.class_name, unit.key, node)] = w / total
        assignment = NIDSAssignment(
            fractions=fractions,
            cpu_load={},
            mem_load={},
            objective=0.0,
            coverage={unit.ident: 1.0 for unit in units},
            solve_seconds=0.0,
        )
        manifests = generate_manifests(units, assignment, nodes)
        report = verify_deployment(units, manifests, assignment)
        assert report.ok, report.render_text()

    def test_raise_for_findings(self):
        unit, manifests, _ = good_world()
        manifests["B"].entries[unit.ident] = (HashRange(0.7, 1.0),)
        report = verify_deployment([unit], manifests)
        with pytest.raises(ManifestRejectedError) as excinfo:
            report.raise_for_findings()
        assert excinfo.value.report is report
        assert "REP101" in str(excinfo.value)

    def test_report_json_schema(self):
        unit, manifests, _ = good_world()
        manifests["B"].entries[unit.ident] = (HashRange(0.7, 1.0),)
        payload = json.loads(verify_deployment([unit], manifests).render_json())
        assert payload["version"] == 1 and payload["ok"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "subject", "message"}
        assert finding["rule"] in VERIFIER_RULES


class TestDeltaChecks:
    @staticmethod
    def base_and_new():
        ident = ("c", ("k",))
        base = NodeManifest("A", {ident: (HashRange(0.0, 0.5),)})
        new = NodeManifest("A", {ident: (HashRange(0.0, 0.7),)})
        return base, new

    def test_clean_delta_verifies(self):
        base, new = self.base_and_new()
        assert verify_delta(base, manifest_diff(base, new)).ok

    def test_wrong_node_is_rep106(self):
        base, new = self.base_and_new()
        delta = dict(manifest_diff(base, new), node="B")
        report = verify_delta(base, delta)
        assert report.rule_ids() == ["REP106"]

    def test_wrong_schema_version_is_rep106(self):
        base, new = self.base_and_new()
        delta = dict(manifest_diff(base, new), version=99)
        assert verify_delta(base, delta).rule_ids() == ["REP106"]

    def test_removal_absent_from_base_is_rep106(self):
        base, new = self.base_and_new()
        delta = manifest_diff(base, new)
        delta["removed"] = [{"class": "c", "unit": ["other"]}]
        report = verify_delta(base, delta)
        assert "REP106" in report.rule_ids()

    def test_delta_leaving_overlap_is_rep102(self):
        base, new = self.base_and_new()
        delta = manifest_diff(base, new)
        delta["changed"][0]["ranges"] = [[0.0, 0.5], [0.4, 0.9]]
        report = verify_delta(base, delta)
        assert report.rule_ids() == ["REP102"]

    def test_check_delta_malformed_ranges_is_rep106(self):
        base, new = self.base_and_new()
        delta = manifest_diff(base, new)
        delta["changed"][0]["ranges"] = [[0.9, 0.1]]  # lo > hi
        findings = check_delta(base, delta)
        assert [f.rule_id for f in findings] == ["REP106"]


@pytest.fixture(scope="module")
def nips_world():
    topology = internet2().set_uniform_capacities(cpu=1e9, mem=1e9, cam=2.0)
    rules = unit_rules(3)
    pairs = [
        (a, b)
        for a in topology.node_names
        for b in topology.node_names
        if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(5))
    problem = build_nips_problem(topology, rules, match)
    return problem


class TestNIPSChecks:
    @staticmethod
    def solution_for(problem, pair, rule_index=0):
        """Enable one rule at the pair's first on-path node, full mass."""
        node = problem.paths[pair].nodes[0]
        cls = type(
            "Solution", (), {}
        )  # avoid importing the LP layer for a plain data holder
        solution = cls()
        solution.e = {(rule_index, node): 1.0}
        solution.d = {(rule_index, pair, node): 1.0}
        solution.objective = 0.0
        solution.solve_seconds = 0.0
        return solution, node

    def test_valid_solution_is_clean(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, _ = self.solution_for(problem, pair)
        assert verify_nips(problem, solution).ok

    def test_tcam_overflow_is_rep105(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, node = self.solution_for(problem, pair)
        # cam capacity is 2.0 slots; enabling all three unit rules
        # (cam_req=1.0 each) overflows it.
        solution.e = {(i, node): 1.0 for i in range(3)}
        solution.d = {}
        report = verify_nips(problem, solution)
        assert report.rule_ids() == ["REP105"]

    def test_sampling_without_enablement_is_rep108(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, node = self.solution_for(problem, pair)
        solution.e = {}
        report = verify_nips(problem, solution)
        assert report.rule_ids() == ["REP108"]

    def test_off_path_filtering_is_rep104(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, _ = self.solution_for(problem, pair)
        off_path = next(
            n
            for n in problem.topology.node_names
            if n not in problem.paths[pair].nodes
        )
        solution.e[(0, off_path)] = 1.0
        solution.d = {(0, pair, off_path): 1.0}
        report = verify_nips(problem, solution)
        assert report.rule_ids() == ["REP104"]

    def test_path_mass_above_one_is_rep101(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, node = self.solution_for(problem, pair)
        second = problem.paths[pair].nodes[-1]
        solution.e[(0, second)] = 1.0
        solution.d[(0, pair, second)] = 0.4  # 1.0 + 0.4 > 1
        report = verify_nips(problem, solution)
        assert report.rule_ids() == ["REP101"]

    def test_generated_nips_manifests_verify_clean(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, _ = self.solution_for(problem, pair)
        manifests = generate_nips_manifests(problem, solution)
        assert verify_nips(problem, solution, manifests).ok

    def test_manifest_sampling_outside_tcam_is_rep108(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, node = self.solution_for(problem, pair)
        manifests = generate_nips_manifests(problem, solution)
        manifests[node].ranges[(1, pair)] = (HashRange(0.0, 0.0),)
        report = verify_nips(problem, solution, manifests)
        assert "REP108" in report.rule_ids()

    def test_manifest_mass_drift_is_rep107(self, nips_world):
        problem = nips_world
        pair = next(iter(problem.paths))
        solution, node = self.solution_for(problem, pair)
        manifests = generate_nips_manifests(problem, solution)
        manifests[node].ranges[(0, pair)] = (HashRange(0.0, 0.5),)
        report = verify_nips(problem, solution, manifests)
        assert report.rule_ids() == ["REP107"]


class TestArtifactFiles:
    @staticmethod
    def write_artifacts(tmp_path, manifests, assignment=None):
        manifests_path = tmp_path / "manifests.json"
        manifests_path.write_text(dump_manifests(manifests))
        assignment_path = None
        if assignment is not None:
            assignment_path = tmp_path / "assignment.json"
            assignment_path.write_text(dump_assignment(assignment))
        return manifests_path, assignment_path

    def test_round_trip_clean(self, tmp_path):
        unit, manifests, assignment = good_world()
        m_path, a_path = self.write_artifacts(tmp_path, manifests, assignment)
        report = verify_artifact_files(str(m_path), str(a_path))
        assert report.ok

    def test_fold_inferred_noted_without_assignment(self, tmp_path):
        unit, manifests, _ = good_world()
        m_path, _ = self.write_artifacts(tmp_path, manifests)
        report = verify_artifact_files(str(m_path))
        assert report.ok and "fold-inferred" in report.checks

    def test_corrupted_file_fails_with_rule_id(self, tmp_path):
        unit, manifests, assignment = good_world()
        manifests["B"].entries[unit.ident] = (HashRange(0.7, 1.0),)
        m_path, a_path = self.write_artifacts(tmp_path, manifests, assignment)
        report = verify_artifact_files(str(m_path), str(a_path))
        assert "REP101" in report.rule_ids()

    def test_cli_verify_exit_codes(self, tmp_path, capsys):
        unit, manifests, assignment = good_world()
        m_path, a_path = self.write_artifacts(tmp_path, manifests, assignment)
        assert analysis_main(
            ["verify", "--manifests", str(m_path), "--assignment", str(a_path)]
        ) == 0
        manifests["B"].entries[unit.ident] = (HashRange(0.7, 1.0),)
        m_bad, _ = self.write_artifacts(tmp_path, manifests)
        assert analysis_main(["verify", "--manifests", str(m_bad)]) == 1
        assert "REP101" in capsys.readouterr().out
        assert analysis_main(["verify", "--manifests", str(tmp_path / "no.json")]) == 2

    def test_cli_list_rules(self, capsys):
        assert analysis_main(["verify", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in VERIFIER_RULES:
            assert rule_id in out
