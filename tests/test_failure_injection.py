"""Failure-injection tests for the §2.5 redundancy extension.

The extension exists "to be robust to NIDS failures ... e.g., hardware
or OS crashes": with redundancy level r, every point of every unit's
hash space is analyzed by r distinct nodes, so losing any single node
must leave every unit still covered.
"""

import pytest

from repro.core.manifest import sampled_node
from repro.core.nids_deployment import plan_deployment
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def deployments():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=141))
    sessions = generator.generate(1500)
    r1 = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    r2 = plan_deployment(topo, paths, STANDARD_MODULES, sessions, coverage=2.0)
    return topo, r1, r2


PROBES = (0.05, 0.2, 0.45, 0.7, 0.95)


class TestSingleNodeFailure:
    def test_r1_deployment_loses_coverage_on_failure(self, deployments):
        """Baseline: without redundancy, killing a busy node orphans
        some hash ranges (this is the gap redundancy closes)."""
        topo, r1, _ = deployments
        exposed = 0
        for unit in r1.units:
            for probe in PROBES:
                holders = sampled_node(unit, r1.manifests, probe)
                survivors = [h for h in holders if h != "NYCM"]
                if not survivors and "NYCM" in holders:
                    exposed += 1
        assert exposed > 0

    @pytest.mark.parametrize("failed", ["NYCM", "KSCY", "STTL"])
    def test_r2_survives_any_single_failure(self, deployments, failed):
        """With r=2, any single node failure leaves every replicable
        unit (|eligible| >= 2) covered at every probe point."""
        topo, _, r2 = deployments
        for unit in r2.units:
            if len(unit.eligible) < 2:
                continue  # singleton units cannot be replicated
            for probe in PROBES:
                holders = sampled_node(unit, r2.manifests, probe)
                survivors = [h for h in holders if h != failed]
                assert survivors, (
                    f"unit {unit.ident} lost all coverage at {probe}"
                    f" when {failed} failed"
                )

    def test_r2_holders_are_distinct(self, deployments):
        """The two holders of any point are distinct nodes — replicas
        on the same box would not survive its crash."""
        topo, _, r2 = deployments
        for unit in r2.units:
            if len(unit.eligible) < 2:
                continue
            for probe in PROBES:
                holders = sampled_node(unit, r2.manifests, probe)
                assert len(holders) == len(set(holders)) == 2

    def test_singleton_units_flagged(self, deployments):
        """Singleton units (scan at its only ingress) cannot be made
        redundant — the planner records the reduced coverage so the
        operator knows the residual risk."""
        topo, _, r2 = deployments
        singles = [u for u in r2.units if len(u.eligible) == 1]
        assert singles  # scan/synflood units are singletons
        for unit in singles:
            assert r2.assignment.coverage[unit.ident] == pytest.approx(1.0)
