"""Failure-injection tests for the §2.5 redundancy extension.

The extension exists "to be robust to NIDS failures ... e.g., hardware
or OS crashes": with redundancy level r, every point of every unit's
hash space is analyzed by r distinct nodes, so losing any single node
must leave every unit still covered.
"""

import pytest

from repro.core.manifest import sampled_node
from repro.core.nids_deployment import plan_deployment
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def deployments():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=141))
    sessions = generator.generate(1500)
    r1 = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    r2 = plan_deployment(topo, paths, STANDARD_MODULES, sessions, coverage=2.0)
    return topo, r1, r2


PROBES = (0.05, 0.2, 0.45, 0.7, 0.95)


class TestSingleNodeFailure:
    def test_r1_deployment_loses_coverage_on_failure(self, deployments):
        """Baseline: without redundancy, killing a busy node orphans
        some hash ranges (this is the gap redundancy closes)."""
        topo, r1, _ = deployments
        exposed = 0
        for unit in r1.units:
            for probe in PROBES:
                holders = sampled_node(unit, r1.manifests, probe)
                survivors = [h for h in holders if h != "NYCM"]
                if not survivors and "NYCM" in holders:
                    exposed += 1
        assert exposed > 0

    @pytest.mark.parametrize("failed", ["NYCM", "KSCY", "STTL"])
    def test_r2_survives_any_single_failure(self, deployments, failed):
        """With r=2, any single node failure leaves every replicable
        unit (|eligible| >= 2) covered at every probe point."""
        topo, _, r2 = deployments
        for unit in r2.units:
            if len(unit.eligible) < 2:
                continue  # singleton units cannot be replicated
            for probe in PROBES:
                holders = sampled_node(unit, r2.manifests, probe)
                survivors = [h for h in holders if h != failed]
                assert survivors, (
                    f"unit {unit.ident} lost all coverage at {probe}"
                    f" when {failed} failed"
                )

    def test_r2_holders_are_distinct(self, deployments):
        """The two holders of any point are distinct nodes — replicas
        on the same box would not survive its crash."""
        topo, _, r2 = deployments
        for unit in r2.units:
            if len(unit.eligible) < 2:
                continue
            for probe in PROBES:
                holders = sampled_node(unit, r2.manifests, probe)
                assert len(holders) == len(set(holders)) == 2

    def test_singleton_units_flagged(self, deployments):
        """Singleton units (scan at its only ingress) cannot be made
        redundant — the planner records the reduced coverage so the
        operator knows the residual risk."""
        topo, _, r2 = deployments
        singles = [u for u in r2.units if len(u.eligible) == 1]
        assert singles  # scan/synflood units are singletons
        for unit in singles:
            assert r2.assignment.coverage[unit.ident] == pytest.approx(1.0)


class TestTargetedRepair:
    """Reactive repair: the coordination plane's failure-driven
    redistribution must hand a dead node's ranges to live eligible
    nodes without touching the survivors' existing assignments."""

    def _repair(self, deployments, failed="NYCM"):
        from repro.control.failure import repair_manifests

        topo, r1, _ = deployments
        return topo, r1, repair_manifests(
            r1.manifests, r1.units, topo, {failed}
        )

    def test_failed_node_fully_cleared(self, deployments):
        _, _, result = self._repair(deployments)
        assert result.manifests["NYCM"].entries == {}

    def test_survivor_ranges_untouched(self, deployments):
        """Survivors only ever *gain* ranges; their previous holdings
        stay bit-identical (the property that keeps repairs delta-sized)."""
        _, r1, result = self._repair(deployments)
        for node, manifest in r1.manifests.items():
            if node == "NYCM":
                continue
            for ident, ranges in manifest.entries.items():
                repaired = result.manifests[node].entries[ident]
                assert repaired[: len(ranges)] == ranges

    def test_replicable_units_stay_fully_covered(self, deployments):
        """Every unit with a live eligible node keeps exact coverage
        after the repair."""
        from repro.control.epochs import union_length

        _, r1, result = self._repair(deployments)
        orphaned_idents = {ident for ident, _ in result.orphaned}
        for unit in r1.units:
            survivors = [n for n in unit.eligible if n != "NYCM"]
            if not survivors or unit.ident in orphaned_idents:
                continue
            held = []
            for node in survivors:
                held.extend(
                    result.manifests[node].ranges(unit.class_name, unit.key)
                )
            assert union_length(held) == pytest.approx(1.0, abs=1e-9)

    def test_moves_only_from_failed_node(self, deployments):
        _, _, result = self._repair(deployments)
        assert result.moves  # NYCM is busy; something must move
        for _cls, _key, donor, receiver, _piece in result.moves:
            assert donor == "NYCM"
            assert receiver != "NYCM"

    def test_moved_mass_matches_failed_holdings(self, deployments):
        _, r1, result = self._repair(deployments)
        orphaned_mass = sum(mass for _, mass in result.orphaned)
        held = sum(
            r.length
            for ranges in r1.manifests["NYCM"].entries.values()
            for r in ranges
        )
        assert result.moved_mass + orphaned_mass == pytest.approx(held)

    def test_singleton_units_reported_orphaned(self, deployments):
        """Units whose only eligible node died cannot be repaired; they
        must be surfaced, not silently dropped."""
        _, r1, result = self._repair(deployments)
        expected = {
            unit.ident
            for unit in r1.units
            if unit.eligible == ("NYCM",)
            and r1.manifests["NYCM"].entries.get(unit.ident)
        }
        assert {ident for ident, _ in result.orphaned} >= expected

    def test_redundant_deployment_repairs_without_overlap(self, deployments):
        """Under r=2 a receiver must never end up holding the same
        point twice for one unit (distinct-holders invariant)."""
        from repro.control.failure import repair_manifests

        topo, _, r2 = deployments
        result = repair_manifests(r2.manifests, r2.units, topo, {"NYCM"})
        for node, manifest in result.manifests.items():
            for ident, ranges in manifest.entries.items():
                ordered = sorted(ranges, key=lambda r: r.lo)
                for first, second in zip(ordered, ordered[1:]):
                    assert not first.overlaps(second)
