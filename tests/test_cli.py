"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.manifest_io import load_manifests


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "command",
        ["plan-nids", "emulate", "solve-nips", "microbench", "online"],
    )
    def test_all_commands_parse_with_defaults(self, command):
        args = build_parser().parse_args([command])
        assert callable(args.func)


class TestPlanNids:
    def test_prints_load_profile(self, capsys):
        code = main(["plan-nids", "--sessions", "600", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "objective=" in out
        assert "NYCM" in out

    def test_writes_manifest_json(self, tmp_path, capsys):
        output = tmp_path / "manifests.json"
        code = main(
            [
                "plan-nids",
                "--sessions",
                "600",
                "--seed",
                "3",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        manifests = load_manifests(output.read_text())
        assert len(manifests) == 11

    def test_redundant_coverage_flag(self, capsys):
        code = main(
            ["plan-nids", "--sessions", "600", "--seed", "3", "--coverage", "2"]
        )
        assert code == 0
        assert "coverage=2" in capsys.readouterr().out


class TestEmulate:
    def test_reports_reduction(self, capsys):
        code = main(
            ["emulate", "--sessions", "800", "--modules", "8", "--seed", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "edge-only" in out
        assert "coordinated" in out
        assert "reduction" in out


class TestSolveNips:
    def test_reports_fraction_of_optlp(self, capsys):
        code = main(
            [
                "solve-nips",
                "--rules",
                "20",
                "--cam-fraction",
                "0.2",
                "--iterations",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OptLP upper bound" in out
        assert "% of OptLP" in out


class TestMicrobench:
    def test_prints_table(self, capsys):
        code = main(["microbench", "--sessions", "1500", "--runs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "signature" in out


class TestOnline:
    def test_prints_regret_series(self, capsys):
        code = main(["online", "--epochs", "20", "--rules", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized regret" in out
        assert "20" in out


class TestPlanFromNetflow:
    def test_netflow_planning_path(self, capsys):
        code = main(
            [
                "plan-nids",
                "--sessions",
                "800",
                "--seed",
                "3",
                "--netflow-sampling",
                "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "planning from NetFlow" in out
        assert "objective=" in out


class TestControlRun:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["control"])

    def test_parses_with_defaults(self):
        args = build_parser().parse_args(["control", "run"])
        assert callable(args.func)
        assert args.epochs == 16

    def test_scenario_runs_and_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "epochs.csv"
        code = main(
            [
                "control",
                "run",
                "--epochs",
                "12",
                "--sessions",
                "400",
                "--shift-epoch",
                "3",
                "--fail-epoch",
                "5",
                "--recover-epoch",
                "9",
                "--output",
                str(output),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "acceptance criteria: all satisfied" in out
        assert "failure detected at epoch" in out
        lines = output.read_text().strip().splitlines()
        assert lines[0].startswith("epoch,sessions,failed_nodes")
        assert len(lines) == 13  # header + one row per epoch

    def test_steady_state_run(self, capsys):
        code = main(
            ["control", "run", "--no-events", "--epochs", "6", "--sessions", "300"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "bootstrap" in out

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "control",
                "run",
                "--epochs",
                "10",
                "--sessions",
                "300",
                "--shift-epoch",
                "3",
                "--fail-epoch",
                "5",
                "--recover-epoch",
                "8",
                "--metrics-out",
                str(metrics),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "wrote telemetry snapshot (json)" in out
        snap = json.loads(metrics.read_text())
        assert snap["version"] == 1
        families = snap["metrics"]
        # The acceptance quartet: solver timing, per-node dispatch,
        # convergence latency, and push-retry health.
        for name in (
            "lp_solve_seconds",
            "agent_dispatch_sessions_total",
            "epoch_convergence_seconds",
            "controller_push_retries_total",
        ):
            assert name in families, name
        nodes = {
            s["labels"]["node"]
            for s in families["agent_dispatch_sessions_total"]["series"]
        }
        assert len(nodes) == 11  # every Internet2 agent reported

    def test_chaos_parses_with_defaults(self):
        args = build_parser().parse_args(["control", "chaos"])
        assert callable(args.func)
        assert args.plan == "controller-outage"
        assert args.epochs == 18
        assert args.lease_ttl == 2.5

    def test_chaos_unknown_plan_exits_2(self, capsys):
        code = main(["control", "chaos", "--plan", "no-such-plan"])
        assert code == 2
        assert "unknown plan" in capsys.readouterr().err

    def test_chaos_outage_run_holds_invariants(self, tmp_path, capsys):
        metrics = tmp_path / "chaos.json"
        code = main(
            [
                "control",
                "chaos",
                "--plan",
                "controller-outage",
                "--sessions",
                "400",
                "--seed",
                "7",
                "--metrics-out",
                str(metrics),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos plan 'controller-outage'" in out
        assert "fault controller_down" in out
        assert "controller-down" in out  # outage epochs flagged
        assert "invariants held" in out
        assert "INVARIANT VIOLATIONS" not in out
        snap = json.loads(metrics.read_text())
        families = snap["metrics"]
        for name in (
            "chaos_injected_total",
            "chaos_invariant_violations_total",
            "agent_lease_expirations_total",
            "controller_lease_fences_total",
        ):
            assert name in families, name
        # The run was clean: the violation family exists but is empty.
        assert families["chaos_invariant_violations_total"]["series"] == []

    def test_metrics_out_prom_extension(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "control",
                "run",
                "--no-events",
                "--epochs",
                "6",
                "--sessions",
                "300",
                "--metrics-out",
                str(metrics),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "wrote telemetry snapshot (prom)" in out
        text = metrics.read_text()
        assert "# TYPE lp_solve_seconds histogram" in text
        assert "bus_messages_total" in text
