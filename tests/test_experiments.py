"""Smoke + shape tests for the per-figure experiment drivers.

These run the same drivers the benchmarks use, at deliberately tiny
sizes, asserting the *shape* properties the paper reports rather than
absolute values.
"""

import pytest

from repro.core.rounding import RoundingVariant
from repro.experiments import (
    evaluate_point,
    fig11_online_regret,
    fig6_module_scaling,
    fig7_volume_scaling,
    fig8_per_node_profile,
    format_comparison_table,
    format_fig10_table,
    format_fig11_table,
    scaled,
    time_nids_lp,
)


class TestScaling:
    def test_scaled_respects_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(100, minimum=5) == 5

    def test_scaled_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        assert scaled(100) == 100

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scaled(100)
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ValueError):
            scaled(100)


class TestFig6:
    def test_coordination_wins_and_gap_grows(self):
        rows = fig6_module_scaling(
            sessions_total=3000, module_counts=(8, 21), seed=1
        )
        assert len(rows) == 2
        for row in rows:
            assert row.coord_cpu < row.edge_cpu
            assert row.coord_mem_mb <= row.edge_mem_mb + 1e-6
        # Fig. 6: the coordinated approach scales better with modules.
        assert rows[1].cpu_reduction > rows[0].cpu_reduction

    def test_table_renders(self):
        rows = fig6_module_scaling(sessions_total=1500, module_counts=(8,), seed=2)
        table = format_comparison_table(rows, "#modules")
        assert "#modules" in table and "cpu red" in table


class TestFig7:
    def test_loads_grow_with_volume(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        rows = fig7_volume_scaling(volume_points=(1000, 3000), seed=3)
        assert rows[1].edge_cpu > rows[0].edge_cpu
        assert rows[1].coord_cpu > rows[0].coord_cpu
        for row in rows:
            assert row.coord_cpu < row.edge_cpu


class TestFig8:
    def test_new_york_offloaded(self):
        profile = fig8_per_node_profile(sessions_total=3000, seed=4)
        assert profile.edge.hottest_cpu_node() == "NYCM"
        assert profile.coordinated.cpu("NYCM") < profile.edge.cpu("NYCM")
        rows = profile.rows()
        assert len(rows) == 11
        # Some node must take on more work than in the edge deployment.
        assert any(coord > edge for _, edge, coord, _, _ in rows)


class TestFig10Driver:
    def test_single_point_fractions(self):
        stats = evaluate_point(
            "Abilene",
            capacity_fraction=0.10,
            variants=(RoundingVariant.LP, RoundingVariant.GREEDY_LP),
            num_scenarios=2,
            iterations=2,
            num_rules=30,
        )
        by_variant = {s.variant: s for s in stats}
        lp = by_variant[RoundingVariant.LP]
        greedy = by_variant[RoundingVariant.GREEDY_LP]
        assert 0.5 <= lp.mean <= 1.0
        assert greedy.mean >= 0.90
        assert greedy.mean >= lp.mean - 1e-9
        table = format_fig10_table(stats)
        assert "Abilene" in table


class TestFig11Driver:
    def test_regret_band(self):
        evaluation = fig11_online_regret(
            num_runs=2, epochs=30, num_rules=3, report_every=10
        )
        assert len(evaluation.runs) == 2
        assert evaluation.worst_final_regret <= 0.25
        table = format_fig11_table(evaluation)
        assert "run 1" in table


class TestTimingDriver:
    def test_nids_lp_timing_runs(self):
        result = time_nids_lp(num_nodes=15, num_sessions=1500)
        assert result.num_nodes == 15
        assert result.solve_seconds > 0.0
        assert result.num_units > 0
