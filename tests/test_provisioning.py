"""Tests for the what-if provisioning analyses (Section 5)."""

import pytest

from repro.core.provisioning import nips_tcam_sweep, rank_nids_upgrades
from repro.core.units import build_units
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator
from tests.test_nips_milp import small_problem


@pytest.fixture(scope="module")
def nids_setup():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=81))
    sessions = generator.generate(1500)
    units = build_units(STANDARD_MODULES, sessions, paths)
    return topo, units


class TestNIDSUpgrades:
    def test_upgrades_never_hurt(self, nids_setup):
        topo, units = nids_setup
        outcomes = rank_nids_upgrades(units, topo, cpu_factor=2.0, mem_factor=2.0)
        for outcome in outcomes:
            assert outcome.upgraded_objective <= outcome.baseline_objective + 1e-9
            assert 0.0 <= outcome.improvement <= 1.0

    def test_ranked_best_first(self, nids_setup):
        topo, units = nids_setup
        outcomes = rank_nids_upgrades(units, topo)
        objectives = [o.upgraded_objective for o in outcomes]
        assert objectives == sorted(objectives)

    def test_all_nodes_evaluated(self, nids_setup):
        topo, units = nids_setup
        outcomes = rank_nids_upgrades(units, topo)
        assert {o.node for o in outcomes} == set(topo.node_names)

    def test_original_topology_unmodified(self, nids_setup):
        topo, units = nids_setup
        rank_nids_upgrades(units, topo)
        for node in topo.nodes():
            assert node.cpu_capacity == 1.0
            assert node.mem_capacity == 1.0


class TestTCAMSweep:
    def test_monotone_nondecreasing(self):
        problem = small_problem(num_rules=6, cam=1.0, seed=23, num_nodes=5)
        points = nips_tcam_sweep(problem, cam_capacities=[1.0, 2.0, 4.0, 6.0])
        objectives = [p.objective for p in points]
        assert objectives == sorted(objectives)

    def test_capacities_restored(self):
        problem = small_problem(num_rules=6, cam=1.0, seed=23, num_nodes=5)
        nips_tcam_sweep(problem, cam_capacities=[2.0, 3.0])
        for name in problem.topology.node_names:
            assert problem.topology.node(name).cam_capacity == pytest.approx(1.0)

    def test_diminishing_returns(self):
        """Once every useful rule fits, more TCAM buys nothing."""
        problem = small_problem(num_rules=4, cam=1.0, seed=29, num_nodes=5)
        points = nips_tcam_sweep(problem, cam_capacities=[4.0, 8.0])
        assert points[1].objective == pytest.approx(points[0].objective, rel=1e-6)


class TestBottleneckAnalysis:
    def test_pressures_sum_to_one(self, nids_setup):
        """LP duality: total pressure across both dimensions is the
        objective's own multiplier (1 for min max-load)."""
        from repro.core.provisioning import bottleneck_analysis

        topo, units = nids_setup
        report = bottleneck_analysis(units, topo)
        total = sum(report.cpu_pressure.values()) + sum(
            report.mem_pressure.values()
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_binding_nodes_nonempty(self, nids_setup):
        from repro.core.provisioning import bottleneck_analysis

        topo, units = nids_setup
        report = bottleneck_analysis(units, topo)
        assert report.binding_nodes()

    def test_agrees_with_resolve_ranking(self, nids_setup):
        """The duals' verdict matches the expensive re-solve ranking:
        the single most effective upgrade is a binding node."""
        from repro.core.provisioning import bottleneck_analysis

        topo, units = nids_setup
        report = bottleneck_analysis(units, topo)
        ranking = rank_nids_upgrades(units, topo)
        improvers = [o.node for o in ranking if o.improvement > 1e-6]
        if improvers:
            assert improvers[0] in report.binding_nodes()

    def test_objective_matches_solve(self, nids_setup):
        from repro.core.provisioning import bottleneck_analysis
        from repro.core.nids_lp import solve_nids_lp

        topo, units = nids_setup
        report = bottleneck_analysis(units, topo)
        assert report.objective == pytest.approx(
            solve_nids_lp(units, topo).objective, rel=1e-9
        )
