"""Tests for the Section 2.2 NIDS assignment LP."""

import pytest

from repro.core.nids_lp import solve_nids_lp, uniform_assignment
from repro.core.units import CoordinationUnit, build_units
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def setup():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=31))
    sessions = generator.generate(2500)
    units = build_units(STANDARD_MODULES, sessions, paths)
    return topo, units


@pytest.fixture(scope="module")
def assignment(setup):
    topo, units = setup
    return solve_nids_lp(units, topo)


class TestCoverage:
    def test_every_unit_fully_covered(self, setup, assignment):
        _, units = setup
        for unit in units:
            total = sum(
                assignment.fraction(unit.class_name, unit.key, node)
                for node in unit.eligible
            )
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fractions_within_bounds(self, assignment):
        for value in assignment.fractions.values():
            assert -1e-9 <= value <= 1.0 + 1e-9

    def test_singleton_units_fully_assigned(self, setup, assignment):
        _, units = setup
        for unit in units:
            if unit.singleton:
                only = unit.eligible[0]
                assert assignment.fraction(
                    unit.class_name, unit.key, only
                ) == pytest.approx(1.0, abs=1e-6)

    def test_no_fraction_outside_eligible_set(self, setup, assignment):
        _, units = setup
        eligible = {
            (u.class_name, u.key): set(u.eligible) for u in units
        }
        for (class_name, key, node), value in assignment.fractions.items():
            if value > 1e-9:
                assert node in eligible[(class_name, key)]


class TestObjective:
    def test_objective_is_max_load(self, assignment):
        expected = max(assignment.max_cpu_load, assignment.max_mem_load)
        assert assignment.objective == pytest.approx(expected, rel=1e-6)

    def test_loads_consistent_with_fractions(self, setup, assignment):
        topo, units = setup
        cpu = {name: 0.0 for name in topo.node_names}
        for unit in units:
            for node in unit.eligible:
                cpu[node] += (
                    unit.cpu_work
                    * assignment.fraction(unit.class_name, unit.key, node)
                    / topo.node(node).cpu_capacity
                )
        for name in topo.node_names:
            assert cpu[name] == pytest.approx(assignment.cpu_load[name], rel=1e-5, abs=1e-6)

    def test_lp_beats_uniform_split(self, setup, assignment):
        topo, units = setup
        naive = uniform_assignment(units, topo)
        assert assignment.objective <= naive.objective + 1e-9

    def test_lp_beats_uniform_strictly_on_skewed_load(self, setup, assignment):
        """On a gravity TM the naive split leaves hot ingresses
        overloaded; the LP must strictly improve."""
        topo, units = setup
        naive = uniform_assignment(units, topo)
        assert assignment.objective < naive.objective * 0.95


class TestHeterogeneousCapacities:
    def test_bigger_node_takes_more_load(self, setup):
        topo, units = setup
        upgraded = topo.copy()
        upgraded.scale_capacity("KSCY", cpu_factor=10.0, mem_factor=10.0)
        base = solve_nids_lp(units, topo)
        boosted = solve_nids_lp(units, upgraded)
        assert boosted.objective <= base.objective + 1e-9

    def test_capacity_normalization(self, setup):
        """Scaling all capacities by c scales all loads by 1/c."""
        topo, units = setup
        scaled = topo.copy().set_uniform_capacities(cpu=2.0, mem=2.0)
        base = solve_nids_lp(units, topo)
        halved = solve_nids_lp(units, scaled)
        assert halved.objective == pytest.approx(base.objective / 2.0, rel=1e-4)


class TestRedundancy:
    def test_coverage_two(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo, coverage=2.0)
        for unit in units:
            expected = min(2.0, len(unit.eligible))
            total = sum(
                assignment.fraction(unit.class_name, unit.key, node)
                for node in unit.eligible
            )
            assert total == pytest.approx(expected, abs=1e-6)

    def test_redundancy_costs_load(self, setup, assignment):
        topo, units = setup
        redundant = solve_nids_lp(units, topo, coverage=2.0)
        assert redundant.objective > assignment.objective

    def test_fractions_still_capped_at_one(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo, coverage=3.0)
        for value in assignment.fractions.values():
            assert value <= 1.0 + 1e-9

    def test_invalid_coverage(self, setup):
        topo, units = setup
        with pytest.raises(ValueError):
            solve_nids_lp(units, topo, coverage=0.5)


class TestResponsibleNodes:
    def test_responsible_nodes_listing(self, setup, assignment):
        _, units = setup
        unit = next(u for u in units if not u.singleton)
        responsible = assignment.responsible_nodes(unit.class_name, unit.key)
        assert responsible
        total = sum(fraction for _, fraction in responsible)
        assert total == pytest.approx(1.0, abs=1e-6)


class TestUniformAssignment:
    def test_even_split(self, setup):
        topo, units = setup
        naive = uniform_assignment(units, topo)
        for unit in units:
            share = 1.0 / len(unit.eligible)
            for node in unit.eligible:
                assert naive.fraction(
                    unit.class_name, unit.key, node
                ) == pytest.approx(share)

    def test_objective_matches_max_load(self, setup):
        topo, units = setup
        naive = uniform_assignment(units, topo)
        assert naive.objective == pytest.approx(
            max(naive.max_cpu_load, naive.max_mem_load)
        )


class TestAlternativeObjectives:
    def test_sum_objective_still_covers(self, setup):
        topo, units = setup
        assignment = solve_nids_lp(units, topo, objective="sum")
        for unit in units:
            total = sum(
                assignment.fraction(unit.class_name, unit.key, node)
                for node in unit.eligible
            )
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_sum_never_below_max_on_binding_dim(self, setup):
        """min-max is optimal for the max metric: the sum objective's
        max load is at least the min-max optimum."""
        topo, units = setup
        minmax = solve_nids_lp(units, topo)
        weighted = solve_nids_lp(units, topo, objective="sum")
        weighted_max = max(weighted.max_cpu_load, weighted.max_mem_load)
        assert weighted_max >= minmax.objective - 1e-9

    def test_weights_shift_pressure(self, setup):
        """Weighting CPU heavily lowers the CPU max relative to a
        memory-heavy weighting."""
        topo, units = setup
        cpu_heavy = solve_nids_lp(
            units, topo, objective="sum", cpu_weight=100.0, mem_weight=1.0
        )
        mem_heavy = solve_nids_lp(
            units, topo, objective="sum", cpu_weight=1.0, mem_weight=100.0
        )
        assert cpu_heavy.max_cpu_load <= mem_heavy.max_cpu_load + 1e-9
        assert mem_heavy.max_mem_load <= cpu_heavy.max_mem_load + 1e-9

    def test_unknown_objective_rejected(self, setup):
        topo, units = setup
        with pytest.raises(ValueError):
            solve_nids_lp(units, topo, objective="product")
