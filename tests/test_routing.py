"""Tests for shortest-path routing and downstream distances."""

import pytest

from repro.topology import DistanceMetric, Path, PathSet, internet2, random_pop_topology


@pytest.fixture(scope="module")
def i2_paths():
    return PathSet(internet2())


class TestPath:
    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            Path("a", "b", ("a", "c"))
        with pytest.raises(ValueError):
            Path("a", "b", ())

    def test_membership_and_position(self):
        path = Path("a", "c", ("a", "b", "c"))
        assert "b" in path
        assert path.position("b") == 1
        assert path.downstream_nodes("a") == ("b", "c")
        assert path.upstream_nodes("c") == ("a", "b")
        assert len(path) == 3
        assert list(path) == ["a", "b", "c"]


class TestPathSet:
    def test_all_ordered_pairs_present(self, i2_paths):
        assert len(i2_paths) == 11 * 11  # self pairs included by default

    def test_self_path_single_node(self, i2_paths):
        path = i2_paths.path("CHIN", "CHIN")
        assert path.nodes == ("CHIN",)

    def test_exclude_self_pairs(self):
        paths = PathSet(internet2(), include_self_pairs=False)
        assert len(paths) == 11 * 10

    def test_known_abilene_route(self, i2_paths):
        """Washington–New York are directly linked."""
        assert i2_paths.path("WASH", "NYCM").nodes == ("WASH", "NYCM")

    def test_paths_follow_links(self, i2_paths):
        topo = internet2()
        for path in i2_paths:
            for a, b in zip(path.nodes, path.nodes[1:]):
                assert b in topo.neighbors(a)

    def test_paths_are_simple(self, i2_paths):
        for path in i2_paths:
            assert len(set(path.nodes)) == len(path.nodes)

    def test_symmetric_node_sets(self, i2_paths):
        """Dijkstra on the undirected Abilene graph yields direction-
        symmetric routes (unique shortest paths)."""
        for a in internet2().node_names:
            for b in internet2().node_names:
                forward = set(i2_paths.path(a, b).nodes)
                backward = set(i2_paths.path(b, a).nodes)
                assert forward == backward

    def test_paths_through(self, i2_paths):
        through = i2_paths.paths_through("KSCY")
        assert all("KSCY" in p for p in through)
        # Kansas City is a central transit node; it must carry transit
        # paths beyond its own 21 endpoint pairs.
        assert len(through) > 21

    def test_mean_path_length_reasonable(self, i2_paths):
        assert 2.0 < i2_paths.mean_path_length() < 6.0


class TestDownstreamDistance:
    def test_paper_example_hops(self, i2_paths):
        """Paper §3.2: for path R1,R2,R3, Dist = 3, 2, 1 in hops."""
        path = next(p for p in i2_paths if len(p) == 3)
        nodes = path.nodes
        assert i2_paths.downstream_distance(path, nodes[0]) == 3.0
        assert i2_paths.downstream_distance(path, nodes[1]) == 2.0
        assert i2_paths.downstream_distance(path, nodes[2]) == 1.0

    def test_unit_metric(self, i2_paths):
        path = i2_paths.path("STTL", "NYCM")
        for node in path.nodes:
            assert (
                i2_paths.downstream_distance(path, node, DistanceMetric.UNIT) == 1.0
            )

    def test_fiber_metric_decreases_downstream(self, i2_paths):
        path = i2_paths.path("STTL", "NYCM")
        distances = [
            i2_paths.downstream_distance(path, node, DistanceMetric.FIBER)
            for node in path.nodes
        ]
        assert distances == sorted(distances, reverse=True)
        assert distances[-1] == pytest.approx(1.0)  # only the local hop left

    def test_distance_table_shape(self, i2_paths):
        table = i2_paths.distance_table()
        assert set(table) == set(i2_paths.pairs)
        pair = ("STTL", "NYCM")
        assert set(table[pair]) == set(i2_paths.path(*pair).nodes)

    def test_hops_upper_bounded_by_path_length(self, i2_paths):
        for path in i2_paths:
            for node in path.nodes:
                dist = i2_paths.downstream_distance(path, node)
                assert 1.0 <= dist <= len(path)


class TestLargerTopology:
    def test_random_topology_paths(self):
        topo = random_pop_topology(30, seed=4)
        paths = PathSet(topo)
        assert len(paths) == 30 * 30
        for path in paths:
            assert path.nodes[0] == path.ingress
            assert path.nodes[-1] == path.egress
