"""Smoke tests: every shipped example runs end to end.

Examples are part of the public API surface; these tests run each
``main()`` (with small arguments where supported) and sanity-check the
output, so API changes that break the examples fail CI.
"""

import importlib
import sys

import pytest


def _run_example(module_name, argv, capsys):
    module = importlib.import_module(module_name)
    old_argv = sys.argv
    sys.argv = argv
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("examples.quickstart", ["quickstart.py"], capsys)
    assert "per-node load profile" in out
    assert "sampling manifest" in out
    assert "ANALYZE" in out or "skip" in out


def test_nids_network_wide(capsys):
    out = _run_example(
        "examples.nids_network_wide", ["nids_network_wide.py", "1500"], capsys
    )
    assert "edge-only" in out
    assert "New York" in out


def test_online_adaptation(capsys):
    out = _run_example(
        "examples.online_adaptation", ["online_adaptation.py", "24"], capsys
    )
    assert "iid-uniform (paper)" in out
    assert "final regret" in out


def test_operations_center(capsys):
    out = _run_example(
        "examples.operations_center", ["operations_center.py"], capsys
    )
    assert "interval 1" in out
    assert "handoffs" in out


def test_redundancy_failover(capsys):
    out = _run_example(
        "examples.redundancy_failover", ["redundancy_failover.py"], capsys
    )
    assert "r=2" in out
    assert "coverage survives" in out


def test_provisioning_whatif(capsys):
    out = _run_example(
        "examples.provisioning_whatif", ["provisioning_whatif.py"], capsys
    )
    assert "NIDS: effect of doubling" in out
    assert "TCAM" in out


@pytest.mark.slow
def test_nips_deployment(capsys):
    out = _run_example(
        "examples.nips_deployment", ["nips_deployment.py"], capsys
    )
    assert "OptLP" in out
    assert "enforcement simulation" in out


def test_control_plane(capsys):
    out = _run_example("examples.control_plane", ["control_plane.py", "14"], capsys)
    assert "coordination plane" in out
    assert "crash detected at epoch" in out
    assert "acceptance" in out
