"""Tests for the traffic workload substrate."""

import random

import pytest

from repro.topology import PathSet, internet2
from repro.traffic import (
    FLAG_SYN,
    FiveTuple,
    GeneratorConfig,
    Packet,
    TCP,
    TEMPLATES,
    TrafficGenerator,
    TrafficMatrix,
    UDP,
    attack_heavy_profile,
    home_node_index,
    host_id,
    merge_packet_streams,
    mixed_profile,
    trace_stats,
    web_heavy_profile,
)
from repro.traffic.profiles import SessionTemplate, TrafficProfile


@pytest.fixture(scope="module")
def generator():
    topo = internet2()
    return TrafficGenerator(topo, PathSet(topo), config=GeneratorConfig(seed=11))


@pytest.fixture(scope="module")
def sessions(generator):
    return generator.generate(2000)


class TestFiveTuple:
    def test_reversed(self):
        t = FiveTuple(1, 2, 10, 80, TCP)
        r = t.reversed()
        assert (r.src, r.dst, r.sport, r.dport) == (2, 1, 80, 10)

    def test_canonical_direction_independent(self):
        t = FiveTuple(9, 2, 10, 80, TCP)
        assert t.canonical() == t.reversed().canonical()

    def test_session_key_direction_independent(self):
        t = FiveTuple(9, 2, 10, 80, TCP)
        assert t.session_key() == t.reversed().session_key()


class TestPacket:
    def test_syn_detection(self):
        t = FiveTuple(1, 2, 10, 80)
        syn = Packet(t, 0.0, flags=FLAG_SYN)
        assert syn.is_syn
        ack = Packet(t, 0.0)
        assert not ack.is_syn


class TestProfiles:
    def test_weights_normalized(self):
        profile = mixed_profile()
        assert sum(profile.weights.values()) == pytest.approx(1.0)

    def test_unknown_template_rejected(self):
        with pytest.raises(ValueError):
            TrafficProfile("bad", {"nosuch": 1.0})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            TrafficProfile("bad", {"http": 0.0})

    def test_draw_template_respects_support(self):
        profile = web_heavy_profile()
        rng = random.Random(0)
        for _ in range(100):
            assert profile.draw_template(rng).name in profile.weights

    def test_packet_count_bounds(self):
        rng = random.Random(1)
        for template in TEMPLATES.values():
            for _ in range(50):
                count = template.draw_packet_count(rng)
                assert template.min_packets <= count <= template.max_packets or count == 1

    def test_half_open_templates_single_packet(self):
        rng = random.Random(2)
        assert TEMPLATES["synflood"].draw_packet_count(rng) == 1
        assert TEMPLATES["scanprobe"].draw_packet_count(rng) == 1

    def test_attack_profile_has_more_malicious_mass(self):
        attack = attack_heavy_profile()
        mixed = mixed_profile()
        def malicious_mass(profile):
            return sum(
                w * TEMPLATES[name].malicious_fraction
                for name, w in profile.weights.items()
            )
        assert malicious_mass(attack) > malicious_mass(mixed)


class TestSessionPackets:
    def _session(self, generator, app):
        for s in generator.generate(3000):
            if s.app == app:
                return s
        raise AssertionError(f"no {app} session generated")

    def test_tcp_session_starts_with_syn(self, generator):
        session = self._session(generator, "http")
        packets = list(session.packets())
        assert packets[0].is_syn
        assert len(packets) >= session.num_packets

    def test_half_open_emits_only_syn(self, generator):
        session = self._session(generator, "synflood")
        packets = list(session.packets())
        assert len(packets) == 1
        assert packets[0].is_syn

    def test_udp_session_no_handshake(self, generator):
        session = self._session(generator, "dns")
        packets = list(session.packets())
        assert len(packets) == session.num_packets
        assert not any(p.is_syn for p in packets)

    def test_bidirectional_traffic(self, generator):
        session = self._session(generator, "http")
        packets = list(session.packets())
        directions = {p.tuple.src for p in packets}
        assert directions == {session.tuple.src, session.tuple.dst}

    def test_malicious_sessions_tagged(self, generator):
        session = self._session(generator, "blaster")
        assert session.malicious
        packets = list(session.packets())
        assert any(p.payload_tag == "blaster-worm" for p in packets)

    def test_merge_packet_streams_ordered(self, generator):
        sessions = generator.generate(50)
        packets = merge_packet_streams(sessions)
        times = [p.timestamp for p in packets]
        assert times == sorted(times)


class TestTrafficMatrix:
    def test_gravity_constructor(self):
        tm = TrafficMatrix.gravity(internet2())
        assert len(tm) == 11 * 10

    def test_uniform_constructor(self):
        tm = TrafficMatrix.uniform(internet2())
        fractions = {tm.fraction(*pair) for pair in tm.pairs}
        assert len(fractions) == 1

    def test_session_counts_sum_exactly(self):
        tm = TrafficMatrix.gravity(internet2())
        for total in (100, 997, 12345):
            counts = tm.session_counts(total)
            assert sum(counts.values()) == total

    def test_sample_pair_distribution(self):
        tm = TrafficMatrix({("a", "b"): 0.9, ("b", "a"): 0.1})
        rng = random.Random(5)
        draws = [tm.sample_pair(rng) for _ in range(2000)]
        heavy = sum(1 for d in draws if d == ("a", "b")) / len(draws)
        assert 0.85 < heavy < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficMatrix({})
        with pytest.raises(ValueError):
            TrafficMatrix({("a", "b"): -0.5})
        with pytest.raises(ValueError):
            TrafficMatrix({("a", "b"): 0.0})

    def test_volumes(self):
        tm = TrafficMatrix({("a", "b"): 3.0, ("b", "a"): 1.0})
        volumes = tm.volumes(100.0)
        assert volumes[("a", "b")] == pytest.approx(75.0)


class TestGenerator:
    def test_exact_session_count(self, sessions):
        assert len(sessions) == 2000

    def test_deterministic(self):
        topo = internet2()
        paths = PathSet(topo)
        a = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=3)).generate(200)
        b = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=3)).generate(200)
        assert [(s.tuple, s.app) for s in a] == [(s.tuple, s.app) for s in b]

    def test_seed_changes_output(self):
        topo = internet2()
        paths = PathSet(topo)
        a = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=3)).generate(200)
        b = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=4)).generate(200)
        assert [(s.tuple, s.app) for s in a] != [(s.tuple, s.app) for s in b]

    def test_hosts_homed_at_ingress_egress(self, generator, sessions):
        names = generator.topology.node_names
        for session in sessions[:500]:
            assert names[home_node_index(session.tuple.src)] == session.ingress
            assert names[home_node_index(session.tuple.dst)] == session.egress

    def test_host_id_roundtrip(self):
        assert home_node_index(host_id(7, 123)) == 7

    def test_sessions_sorted_by_time(self, sessions):
        times = [s.start_time for s in sessions]
        assert times == sorted(times)

    def test_split_by_node_edge(self, generator, sessions):
        traces = generator.split_by_node(sessions, transit=False)
        total = sum(len(t) for t in traces.values())
        # Every session appears at its ingress and (distinct) egress.
        assert total == 2 * len(sessions)

    def test_split_by_node_transit_superset(self, generator, sessions):
        edge = generator.split_by_node(sessions, transit=False)
        transit = generator.split_by_node(sessions, transit=True)
        for node in edge:
            assert len(transit[node]) >= len(edge[node])

    def test_transit_matches_paths(self, generator, sessions):
        traces = generator.split_by_node(sessions, transit=True)
        total = sum(len(t) for t in traces.values())
        expected = sum(len(generator.path_of(s)) for s in sessions)
        assert total == expected

    def test_trace_stats(self, sessions):
        stats = trace_stats(sessions)
        assert stats.num_sessions == len(sessions)
        assert stats.num_packets == sum(s.num_packets for s in sessions)
        assert 0 < stats.num_sources <= 11 * 256
