"""Tests for the NIPS enforcement simulation."""

import random

import pytest

from repro.core.nips_milp import solve_relaxation, solve_with_fixed_rules
from repro.core.rounding import RoundingVariant, best_of_roundings
from repro.nips.enforcement import enforce
from tests.test_nips_milp import small_problem


@pytest.fixture(scope="module")
def deployment():
    problem = small_problem(num_rules=5, cam=2.0, seed=13, num_nodes=6)
    best = best_of_roundings(problem, RoundingVariant.GREEDY_LP, iterations=4, seed=1)
    return problem, best.solution


class TestDisjointEnforcement:
    def test_realized_footprint_equals_objective(self, deployment):
        """With Fig. 2-style disjoint ranges, the enforcement realizes
        exactly the optimization objective."""
        problem, solution = deployment
        report = enforce(problem, solution, disjoint=True)
        assert report.footprint_removed == pytest.approx(
            report.modeled_objective, rel=1e-6
        )

    def test_loads_within_conservative_model(self, deployment):
        problem, solution = deployment
        report = enforce(problem, solution, disjoint=True)
        assert report.load_within_model()

    def test_drop_rate_bounded(self, deployment):
        problem, solution = deployment
        report = enforce(problem, solution, disjoint=True)
        assert 0.0 <= report.drop_rate <= 1.0

    def test_no_deployment_drops_nothing(self, deployment):
        problem, solution = deployment
        from repro.core.nips_milp import NIPSSolution

        empty = NIPSSolution(e={}, d={}, objective=0.0, solve_seconds=0.0)
        report = enforce(problem, empty)
        assert report.footprint_removed == 0.0
        assert report.flows_dropped == 0.0


class TestIndependentSampling:
    def test_independent_never_beats_disjoint(self, deployment):
        """Independent per-node sampling re-inspects flows already
        dropped upstream; disjoint ranges dominate it."""
        problem, solution = deployment
        disjoint = enforce(problem, solution, disjoint=True)
        independent = enforce(problem, solution, disjoint=False)
        assert independent.footprint_removed <= disjoint.footprint_removed + 1e-6

    def test_independent_loads_within_model(self, deployment):
        problem, solution = deployment
        report = enforce(problem, solution, disjoint=False)
        assert report.load_within_model()


class TestAgainstRelaxation:
    def test_enforced_rounded_solution_below_lp_bound(self, deployment):
        problem, solution = deployment
        relaxed = solve_relaxation(problem)
        report = enforce(problem, solution, disjoint=True)
        assert report.footprint_removed <= relaxed.objective + 1e-6

    def test_full_enablement_maximizes_drops(self):
        problem = small_problem(num_rules=3, cam=3.0, seed=17, num_nodes=5)
        all_on = {
            (i, node): 1
            for i in range(problem.num_rules)
            for node in problem.topology.node_names
        }
        solution = solve_with_fixed_rules(problem, all_on)
        report = enforce(problem, solution)
        assert report.flows_dropped > 0


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@given(seed=st.integers(min_value=0, max_value=500))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_disjoint_enforcement_realizes_objective(seed):
    """For any rounded deployment, disjoint-range enforcement realizes
    exactly the optimization objective and stays within the load model."""
    import random as _random

    from repro.core.rounding import RoundingVariant, rounded_deployment
    from repro.core.nips_milp import solve_relaxation as _relax

    problem = small_problem(num_rules=4, cam=2.0, seed=seed, num_nodes=5)
    relaxed = _relax(problem)
    result = rounded_deployment(
        problem, RoundingVariant.GREEDY_LP, _random.Random(seed), relaxed=relaxed
    )
    report = enforce(problem, result.solution, disjoint=True)
    assert report.footprint_removed == pytest.approx(
        result.solution.objective, rel=1e-6, abs=1e-6
    )
    assert report.load_within_model()
