"""Unit tests for the repro.obs telemetry subsystem."""

import io
import json
import math

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    CSV_HEADER,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    csv_rows,
    get_registry,
    parse_prometheus,
    set_registry,
    snapshot,
    to_prometheus,
    use_registry,
    write_csv,
    write_json,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("sessions_total", labels=("node",))
        counter.inc(3, node="NYCM")
        counter.inc(4, node="CHIN")
        assert counter.value(node="NYCM") == 3
        assert counter.value(node="CHIN") == 4
        assert counter.total() == 7
        assert {labels["node"] for labels, _ in counter.series()} == {"NYCM", "CHIN"}

    def test_cannot_decrease(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c_total", labels=("node",))
        with pytest.raises(ValueError):
            counter.inc(1)
        with pytest.raises(ValueError):
            counter.inc(1, node="a", extra="b")

    def test_create_or_get_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", labels=("k",))
        second = registry.counter("x_total", labels=("k",))
        assert first is second

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("k",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("other",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", labels=("k",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "1abc", "has space", "has-dash"):
            with pytest.raises(ValueError):
                registry.counter(bad)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12.0

    def test_gauge_may_go_negative(self):
        gauge = MetricsRegistry().gauge("delta")
        gauge.dec(2)
        assert gauge.value() == -2.0


class TestHistogram:
    def test_bucket_assignment_and_exact_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            hist.observe(value)
        # le-0.1 gets 0.05 and the boundary value 0.1 (le semantics).
        assert hist.bucket_counts() == [2, 1, 1, 1]
        assert hist.count() == 5
        assert hist.sum() == pytest.approx(105.65)
        assert hist.mean() == pytest.approx(105.65 / 5)

    def test_cumulative_buckets_end_with_inf_total(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(99.0)
        cumulative = hist.cumulative_buckets()
        assert cumulative == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_empty_series_reads_zero(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0,))
        assert hist.count() == 0
        assert hist.sum() == 0.0
        assert hist.mean() == 0.0
        assert hist.bucket_counts() == [0, 0]

    def test_buckets_must_be_increasing_and_finite(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, math.inf))

    def test_count_buckets_cover_discrete_sizes(self):
        hist = MetricsRegistry().histogram("entries", buckets=COUNT_BUCKETS)
        hist.observe(7)
        hist.observe(70_000)
        assert hist.count() == 2


class TestTimerAndSpan:
    def test_timer_records_into_histogram(self):
        registry = MetricsRegistry()
        with registry.timer("phase_seconds", "phase", kind="solve") as span:
            pass
        assert span.elapsed is not None and span.elapsed >= 0.0
        hist = registry.get("phase_seconds")
        assert hist.count(kind="solve") == 1
        assert hist.sum(kind="solve") == pytest.approx(span.elapsed)

    def test_timer_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.timer("phase_seconds"):
                raise RuntimeError("boom")
        assert registry.get("phase_seconds").count() == 1

    def test_span_adds_completion_counter(self):
        registry = MetricsRegistry()
        with registry.span("resolve", "resolve pass"):
            pass
        assert registry.get("resolve_seconds").count() == 1
        assert registry.get("resolve_total").value() == 1


class TestNullRegistry:
    def test_disabled_and_stateless(self):
        null = NullRegistry()
        assert not null.enabled
        assert NULL_REGISTRY.enabled is False
        counter = null.counter("anything")
        counter.inc(10)
        assert counter.value() == 0.0
        null.gauge("g").set(5)
        null.histogram("h").observe(1.0)
        assert null.metrics() == []

    def test_timer_still_yields_a_span(self):
        with NULL_REGISTRY.timer("phase_seconds") as span:
            pass
        assert span.elapsed is not None


class TestAmbientRegistry:
    def test_defaults_to_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(None)
        assert previous is NULL_REGISTRY
        assert get_registry() is NULL_REGISTRY

    def test_nested_scopes_restore_in_order(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is outer


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("pushes_total", "pushes", labels=("mode",))
    counter.inc(3, mode="delta")
    counter.inc(1, mode="full")
    registry.gauge("config_version", "current epoch version").set(7)
    hist = registry.histogram("solve_seconds", "LP time", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestExporters:
    def test_json_snapshot_shape(self):
        snap = snapshot(_populated_registry())
        assert snap["version"] == 1
        metrics = snap["metrics"]
        assert metrics["pushes_total"]["type"] == "counter"
        assert {s["labels"]["mode"]: s["value"] for s in metrics["pushes_total"]["series"]} == {
            "delta": 3,
            "full": 1,
        }
        hist = metrics["solve_seconds"]
        assert hist["buckets"] == [0.1, 1.0]
        (series,) = hist["series"]
        assert series["count"] == 3
        assert series["bucket_counts"] == [1, 1, 1]

    def test_write_json_round_trips(self):
        registry = _populated_registry()
        stream = io.StringIO()
        write_json(registry, stream)
        assert json.loads(stream.getvalue()) == snapshot(registry)

    def test_csv_header_and_rows(self):
        registry = _populated_registry()
        stream = io.StringIO()
        write_csv(registry, stream)
        lines = stream.getvalue().strip().splitlines()
        assert lines[0] == ",".join(CSV_HEADER)
        rows = list(csv_rows(registry))
        assert len(lines) == len(rows) + 1
        # Histogram buckets are cumulative in the flat form.
        bucket_rows = [r for r in rows if str(r[3]).startswith("bucket_le_")]
        assert [r[4] for r in bucket_rows] == [1, 2, 3]
        assert bucket_rows[-1][3] == "bucket_le_+Inf"

    def test_prometheus_round_trip(self):
        registry = _populated_registry()
        text = to_prometheus(registry)
        assert "# TYPE pushes_total counter" in text
        assert "# HELP solve_seconds LP time" in text
        samples = parse_prometheus(text)
        assert samples["pushes_total"] == [
            ((("mode", "delta"),), 3.0),
            ((("mode", "full"),), 1.0),
        ]
        assert samples["config_version"] == [((), 7.0)]
        assert samples["solve_seconds_count"] == [((), 3.0)]
        assert samples["solve_seconds_sum"] == [((), pytest.approx(2.55))]
        buckets = dict(samples["solve_seconds_bucket"])
        assert buckets[(("le", "0.1"),)] == 1.0
        assert buckets[(("le", "1"),)] == 2.0
        assert buckets[(("le", "+Inf"),)] == 3.0

    def test_prometheus_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("key",)).inc(
            1, key='quote " slash \\ newline\nend'
        )
        ((labels, value),) = parse_prometheus(to_prometheus(registry))["odd_total"]
        assert dict(labels)["key"] == 'quote " slash \\ newline\nend'
        assert value == 1.0

    def test_empty_registry_exports_cleanly(self):
        registry = MetricsRegistry()
        assert to_prometheus(registry) == ""
        assert snapshot(registry) == {"version": 1, "metrics": {}}
        assert list(csv_rows(registry)) == []


class TestMetricsSnapshotReport:
    def test_formats_and_default_json(self):
        from repro.reporting import MetricsSnapshotReport

        registry = _populated_registry()
        report = MetricsSnapshotReport(registry)
        assert report.formats() == ("json", "csv", "prom")
        assert json.loads(report.to_string()) == snapshot(registry)
        assert json.loads(report.to_string("json")) == snapshot(registry)

    def test_csv_matches_export_module(self):
        from repro.reporting import MetricsSnapshotReport

        registry = _populated_registry()
        stream = io.StringIO()
        write_csv(registry, stream)
        assert MetricsSnapshotReport(registry).to_string("csv") == stream.getvalue()

    def test_prom_matches_export_module(self):
        from repro.reporting import MetricsSnapshotReport

        registry = _populated_registry()
        assert MetricsSnapshotReport(registry).to_string("prom") == to_prometheus(
            registry
        )

    def test_unknown_format_raises(self):
        from repro.reporting import MetricsSnapshotReport

        with pytest.raises(ValueError):
            MetricsSnapshotReport(MetricsRegistry()).to_string("xml")


class TestRareEventFamilies:
    """The graceful-degradation and chaos families are pre-declared at
    construction time, so a fault-free run still exports them (a
    missing family and a zero family must be distinguishable), and
    recorded values survive the Prometheus round trip."""

    RARE_FAMILIES = (
        "agent_lease_expirations_total",
        "agent_degraded_epochs_total",
        "agent_duplicate_suppressions_total",
        "agent_resync_requests_total",
        "controller_lease_fences_total",
        "controller_superseded_acks_total",
        "chaos_injected_total",
        "chaos_invariant_violations_total",
    )

    def _declared_registry(self):
        from repro.control.agent import Agent, AgentConfig
        from repro.control.bus import BusConfig
        from repro.control.chaos import ChaosBus, FaultPlan, InvariantMonitor
        from repro.control.controller import Controller, ControllerConfig
        from repro.nids.modules import STANDARD_MODULES
        from repro.topology import PathSet, by_label

        registry = MetricsRegistry()
        bus = ChaosBus(
            FaultPlan(name="quiet", events=()),
            BusConfig(latency=0.0),
            registry=registry,
        )
        topology = by_label("Internet2")
        Controller(
            topology,
            PathSet(topology),
            list(STANDARD_MODULES),
            bus,
            ControllerConfig(lease_ttl=2.5),
            registry=registry,
        )
        Agent(
            "NYCM", bus, config=AgentConfig(lease_ttl=2.5), registry=registry
        )
        InvariantMonitor(STANDARD_MODULES, registry=registry)
        return registry

    def test_families_predeclared_without_any_fault(self):
        registry = self._declared_registry()
        snap = snapshot(registry)
        text = to_prometheus(registry)
        for name in self.RARE_FAMILIES:
            assert name in snap["metrics"], name
            assert f"# TYPE {name} counter" in text

    def test_recorded_rare_events_round_trip(self):
        registry = self._declared_registry()
        registry.get("agent_lease_expirations_total").inc(node="NYCM")
        registry.get("chaos_injected_total").inc(3, fault="partition")
        registry.get("chaos_invariant_violations_total").inc(
            rule="coverage-floor"
        )
        registry.get("controller_superseded_acks_total").inc()
        samples = parse_prometheus(to_prometheus(registry))
        assert samples["agent_lease_expirations_total"] == [
            ((("node", "NYCM"),), 1.0)
        ]
        assert samples["chaos_injected_total"] == [
            ((("fault", "partition"),), 3.0)
        ]
        assert samples["chaos_invariant_violations_total"] == [
            ((("rule", "coverage-floor"),), 1.0)
        ]
        assert samples["controller_superseded_acks_total"] == [((), 1.0)]


class TestMergeFrom:
    """Cross-process snapshot folding (the sweep merge layer)."""

    def test_counters_add_per_series(self):
        source = MetricsRegistry()
        source.counter("jobs_total", labels=("node",)).inc(3, node="a")
        source.counter("jobs_total", labels=("node",)).inc(1, node="b")
        target = MetricsRegistry()
        target.counter("jobs_total", labels=("node",)).inc(2, node="a")
        target.merge_from(snapshot(source))
        merged = target.get("jobs_total")
        assert merged.value(node="a") == 5.0
        assert merged.value(node="b") == 1.0

    def test_gauges_overwrite_last_merge_wins(self):
        first = MetricsRegistry()
        first.gauge("depth").set(4.0)
        second = MetricsRegistry()
        second.gauge("depth").set(9.0)
        target = MetricsRegistry()
        target.merge_from(snapshot(first))
        target.merge_from(snapshot(second))
        assert target.get("depth").value() == 9.0

    def test_histograms_add_buckets_sum_and_count(self):
        buckets = (1.0, 5.0)
        source = MetricsRegistry()
        source.histogram("latency", buckets=buckets).observe(0.5)
        source.histogram("latency", buckets=buckets).observe(3.0)
        target = MetricsRegistry()
        target.histogram("latency", buckets=buckets).observe(10.0)
        target.merge_from(snapshot(source))
        merged = target.get("latency")
        assert merged.count() == 3
        assert merged.sum() == 13.5

    def test_merge_creates_missing_families(self):
        source = MetricsRegistry()
        source.counter("new_total", "fresh family").inc(2)
        target = MetricsRegistry()
        target.merge_from(snapshot(source))
        assert target.get("new_total").total() == 2.0

    def test_merge_is_commutative_for_counters(self):
        a = MetricsRegistry()
        a.counter("events_total").inc(3)
        b = MetricsRegistry()
        b.counter("events_total").inc(4)
        ab = MetricsRegistry()
        ab.merge_from(snapshot(a))
        ab.merge_from(snapshot(b))
        ba = MetricsRegistry()
        ba.merge_from(snapshot(b))
        ba.merge_from(snapshot(a))
        assert snapshot(ab) == snapshot(ba)

    def test_version_mismatch_raises(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError, match="snapshot version"):
            target.merge_from({"version": 99, "metrics": {}})

    def test_histogram_bucket_mismatch_raises(self):
        source = MetricsRegistry()
        source.histogram("latency", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("latency", buckets=(1.0, 8.0)).observe(0.5)
        with pytest.raises(ValueError):
            target.merge_from(snapshot(source))

    def test_null_registry_ignores_merges(self):
        source = MetricsRegistry()
        source.counter("events_total").inc(5)
        NULL_REGISTRY.merge_from(snapshot(source))
        assert NULL_REGISTRY.get("events_total") is None
        assert snapshot(NULL_REGISTRY)["metrics"] == {}
