"""Tests for topology datasets, the graph model, and the gravity TM."""

import math

import pytest

from repro.topology import (
    LinkSpec,
    NodeSpec,
    ROCKETFUEL_SIZES,
    Topology,
    by_label,
    geant,
    gravity_fractions,
    gravity_matrix,
    heaviest_pair,
    ingress_fractions,
    internet2,
    random_pop_topology,
    rocketfuel,
)


class TestTopologyModel:
    def _tiny(self):
        nodes = [NodeSpec("a"), NodeSpec("b"), NodeSpec("c")]
        links = [LinkSpec("a", "b", 2.0), LinkSpec("b", "c", 3.0)]
        return Topology("tiny", nodes, links)

    def test_basic_accessors(self):
        topo = self._tiny()
        assert len(topo) == 3
        assert topo.node_names == ["a", "b", "c"]
        assert "b" in topo
        assert topo.degree("b") == 2
        assert topo.neighbors("b") == ["a", "c"]
        assert topo.link_distance("a", "b") == pytest.approx(2.0)

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", [NodeSpec("a"), NodeSpec("a")], [])

    def test_unknown_link_endpoint_rejected(self):
        with pytest.raises(ValueError):
            Topology("bad", [NodeSpec("a")], [LinkSpec("a", "zz")])

    def test_disconnected_rejected(self):
        nodes = [NodeSpec("a"), NodeSpec("b"), NodeSpec("c")]
        with pytest.raises(ValueError):
            Topology("bad", nodes, [LinkSpec("a", "b")])

    def test_nonpositive_distance_rejected(self):
        nodes = [NodeSpec("a"), NodeSpec("b")]
        with pytest.raises(ValueError):
            Topology("bad", nodes, [LinkSpec("a", "b", 0.0)])

    def test_uniform_capacities(self):
        topo = self._tiny().set_uniform_capacities(cpu=5.0, mem=6.0, cam=7.0)
        for node in topo.nodes():
            assert node.cpu_capacity == 5.0
            assert node.mem_capacity == 6.0
            assert node.cam_capacity == 7.0

    def test_partial_capacity_update(self):
        topo = self._tiny().set_uniform_capacities(cpu=5.0)
        topo.set_uniform_capacities(cam=3.0)
        assert topo.node("a").cpu_capacity == 5.0
        assert topo.node("a").cam_capacity == 3.0

    def test_copy_is_independent(self):
        topo = self._tiny().set_uniform_capacities(cpu=1.0)
        clone = topo.copy()
        clone.scale_capacity("a", cpu_factor=10.0)
        assert topo.node("a").cpu_capacity == 1.0
        assert clone.node("a").cpu_capacity == 10.0


class TestInternet2:
    def test_paper_dimensions(self):
        topo = internet2()
        assert len(topo) == 11
        assert len(topo.links) == 14

    def test_new_york_is_node_11(self):
        """The paper's Fig. 8 node 11 — New York — is the last node."""
        topo = internet2()
        assert topo.node_names[-1] == "NYCM"
        assert topo.node("NYCM").city == "New York"

    def test_new_york_has_largest_population(self):
        topo = internet2()
        populations = topo.populations
        assert max(populations, key=populations.get) == "NYCM"

    def test_connected_and_degree_bounds(self):
        topo = internet2()
        for name in topo.node_names:
            assert 2 <= topo.degree(name) <= 4  # Abilene's actual degrees


class TestGeant:
    def test_dimensions(self):
        topo = geant()
        assert len(topo) == 22
        assert len(topo.links) >= 30

    def test_link_distances_are_geographic(self):
        topo = geant()
        # London–Dublin is ~460 km; sanity check the haversine wiring.
        assert 300 < topo.link_distance("UK", "IE") < 700


class TestRocketfuel:
    @pytest.mark.parametrize("asn", sorted(ROCKETFUEL_SIZES))
    def test_sizes_match_published_pop_counts(self, asn):
        topo = rocketfuel(asn)
        assert len(topo) == ROCKETFUEL_SIZES[asn]

    def test_deterministic(self):
        a, b = rocketfuel(1221), rocketfuel(1221)
        assert a.node_names == b.node_names
        assert [(l.a, l.b) for l in a.links] == [(l.a, l.b) for l in b.links]

    def test_unknown_asn(self):
        with pytest.raises(ValueError):
            rocketfuel(7018)


class TestRandomTopology:
    def test_connected_any_size(self):
        for size in (2, 5, 17, 50):
            topo = random_pop_topology(size, seed=size)
            assert len(topo) == size  # construction validates connectivity

    def test_seed_determinism(self):
        a = random_pop_topology(20, seed=9)
        b = random_pop_topology(20, seed=9)
        assert a.populations == b.populations

    def test_different_seeds_differ(self):
        a = random_pop_topology(20, seed=1)
        b = random_pop_topology(20, seed=2)
        assert a.populations != b.populations

    def test_size_validation(self):
        with pytest.raises(ValueError):
            random_pop_topology(1)


class TestByLabel:
    @pytest.mark.parametrize(
        "label,size",
        [("Abilene", 11), ("Geant", 22), ("AS1221", 44), ("AS1239", 52), ("AS3257", 41)],
    )
    def test_evaluation_topologies(self, label, size):
        assert len(by_label(label)) == size

    def test_internet2_alias(self):
        assert len(by_label("internet2")) == 11

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            by_label("sprintlink")


class TestGravity:
    def test_fractions_sum_to_one(self):
        fractions = gravity_fractions(internet2().populations)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_excludes_self_pairs_by_default(self):
        fractions = gravity_fractions({"a": 1.0, "b": 2.0})
        assert ("a", "a") not in fractions
        assert len(fractions) == 2

    def test_include_self_pairs(self):
        fractions = gravity_fractions({"a": 1.0, "b": 2.0}, include_self_pairs=True)
        assert len(fractions) == 4

    def test_proportional_to_population_product(self):
        fractions = gravity_fractions({"a": 1.0, "b": 2.0, "c": 3.0})
        assert fractions[("b", "c")] / fractions[("a", "b")] == pytest.approx(3.0)

    def test_heaviest_pair_on_internet2(self):
        """NY (18.9M) and LA (12.8M) have the largest product."""
        fractions = gravity_fractions(internet2().populations)
        assert set(heaviest_pair(fractions)) == {"NYCM", "LOSA"}

    def test_gravity_matrix_volume(self):
        volumes = gravity_matrix(internet2(), total_volume=1000.0)
        assert sum(volumes.values()) == pytest.approx(1000.0)

    def test_ingress_fractions(self):
        fractions = gravity_fractions(internet2().populations)
        per_ingress = ingress_fractions(fractions)
        assert sum(per_ingress.values()) == pytest.approx(1.0)
        assert max(per_ingress, key=per_ingress.get) == "NYCM"

    def test_rejects_bad_populations(self):
        with pytest.raises(ValueError):
            gravity_fractions({"a": 0.0, "b": 1.0})
        with pytest.raises(ValueError):
            gravity_fractions({})
