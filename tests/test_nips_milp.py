"""Tests for the NIPS MILP formulation (Eqs. 7-14)."""

import random

import pytest

from repro.core.nips_milp import (
    INTERNET2_BASE_FLOWS,
    INTERNET2_BASE_PACKETS,
    NIPSProblem,
    build_nips_problem,
    solve_exact,
    solve_relaxation,
    solve_with_fixed_rules,
)
from repro.nips.rules import MatchRateMatrix, NIPSRule, unit_rules
from repro.topology import DistanceMetric, PathSet, internet2, random_pop_topology


def small_problem(num_rules=4, cam=2.0, seed=5, num_nodes=5):
    topo = random_pop_topology(num_nodes, seed=seed).set_uniform_capacities(
        cpu=200_000.0, mem=50_000.0, cam=cam
    )
    rules = unit_rules(num_rules)
    pairs = [(a, b) for a in topo.node_names for b in topo.node_names if a != b]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(seed))
    return build_nips_problem(
        topo, rules, match, total_flows=500_000.0, total_packets=2_000_000.0
    )


@pytest.fixture(scope="module")
def i2_problem():
    topo = internet2().set_uniform_capacities(
        cpu=2_000_000.0, mem=400_000.0, cam=10.0
    )
    rules = unit_rules(30)
    pairs = [(a, b) for a in topo.node_names for b in topo.node_names if a != b]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(2))
    return build_nips_problem(topo, rules, match)


class TestProblemConstruction:
    def test_volume_model_defaults(self, i2_problem):
        assert sum(i2_problem.items.values()) == pytest.approx(INTERNET2_BASE_FLOWS)
        assert sum(i2_problem.pkts.values()) == pytest.approx(INTERNET2_BASE_PACKETS)

    def test_volume_scales_with_network_size(self):
        topo = random_pop_topology(22, seed=1).set_uniform_capacities(cam=5.0)
        rules = unit_rules(5)
        pairs = [(a, b) for a in topo.node_names for b in topo.node_names if a != b]
        match = MatchRateMatrix.uniform(rules, pairs, random.Random(1))
        problem = build_nips_problem(topo, rules, match)
        assert sum(problem.items.values()) == pytest.approx(
            INTERNET2_BASE_FLOWS * 22 / 11
        )

    def test_paths_and_dist_consistent(self, i2_problem):
        for pair, path in i2_problem.paths.items():
            dist = i2_problem.dist[pair]
            assert set(dist) == set(path.nodes)
            # Hops metric: ingress sees the whole path, egress sees 1.
            assert dist[path.nodes[0]] == len(path)
            assert dist[path.nodes[-1]] == 1.0

    def test_unit_distance_metric(self):
        topo = internet2().set_uniform_capacities(cam=3.0)
        rules = unit_rules(3)
        pairs = [("STTL", "NYCM")]
        match = MatchRateMatrix.uniform(rules, pairs, random.Random(0))
        problem = build_nips_problem(
            topo, rules, match, metric=DistanceMetric.UNIT
        )
        for dist in problem.dist.values():
            assert set(dist.values()) == {1.0}


class TestObjectiveAndFeasibility:
    def test_objective_formula(self, i2_problem):
        pair = i2_problem.pairs[0]
        node = i2_problem.paths[pair].nodes[0]
        d = {(0, pair, node): 0.5}
        expected = (
            i2_problem.items[pair]
            * i2_problem.match.rate(0, pair)
            * i2_problem.dist[pair][node]
            * 0.5
        )
        assert i2_problem.objective(d) == pytest.approx(expected)

    def test_feasibility_checker_accepts_valid(self, i2_problem):
        pair = i2_problem.pairs[0]
        node = i2_problem.paths[pair].nodes[0]
        e = {(0, node): 1}
        d = {(0, pair, node): 0.001}
        assert i2_problem.check_feasible(e, d) == []

    def test_feasibility_checker_catches_unlinked_d(self, i2_problem):
        pair = i2_problem.pairs[0]
        node = i2_problem.paths[pair].nodes[0]
        violations = i2_problem.check_feasible({}, {(0, pair, node): 0.5})
        assert any("exceeds e" in v for v in violations)

    def test_feasibility_checker_catches_cam_overflow(self, i2_problem):
        node = i2_problem.topology.node_names[0]
        e = {(i, node): 1 for i in range(30)}  # cam capacity is 10
        violations = i2_problem.check_feasible(e, {})
        assert any("TCAM" in v for v in violations)

    def test_feasibility_checker_catches_path_oversampling(self, i2_problem):
        pair = i2_problem.pairs[0]
        nodes = i2_problem.paths[pair].nodes
        if len(nodes) < 2:
            pytest.skip("need a multi-hop path")
        e = {(0, n): 1 for n in nodes[:2]}
        d = {(0, pair, nodes[0]): 0.7, (0, pair, nodes[1]): 0.7}
        violations = i2_problem.check_feasible(e, d)
        assert any("sum to" in v for v in violations)


class TestRelaxation:
    def test_relaxation_solution_feasible_fractionally(self, i2_problem):
        relaxed = solve_relaxation(i2_problem)
        assert relaxed.objective > 0
        # Fractional e is allowed in the relaxation; d <= e must hold.
        for (i, pair, node), value in relaxed.d.items():
            assert value <= relaxed.e[(i, node)] + 1e-6

    def test_relaxation_respects_cam_fractionally(self, i2_problem):
        relaxed = solve_relaxation(i2_problem)
        for node in i2_problem.topology.node_names:
            used = sum(
                value
                for (i, n), value in relaxed.e.items()
                if n == node
            )
            assert used <= i2_problem.topology.node(node).cam_capacity + 1e-6

    def test_more_tcam_cannot_hurt(self):
        base = small_problem(cam=1.0)
        more = small_problem(cam=3.0)
        assert solve_relaxation(more).objective >= solve_relaxation(base).objective - 1e-6


class TestExactVsRelaxation:
    def test_relaxation_upper_bounds_exact(self):
        problem = small_problem(num_rules=3, cam=1.0, num_nodes=4)
        relaxed = solve_relaxation(problem)
        exact = solve_exact(problem)
        assert exact.feasible
        assert exact.objective <= relaxed.objective + 1e-6

    def test_exact_solution_feasible(self):
        problem = small_problem(num_rules=3, cam=1.0, num_nodes=4)
        built_exact = solve_exact(problem)
        # Reconstruct e/d maps from the named variables.
        e = {}
        d = {}
        for name, value in zip(built_exact.variable_names, built_exact.values):
            if name.startswith("e["):
                i, node = name[2:-1].split("|")
                e[(int(i), node)] = round(value)
            elif name.startswith("d["):
                i, pair_str, node = name[2:-1].split("|")
                a, b = pair_str.split("-")
                d[(int(i), (a, b), node)] = value
        assert problem.check_feasible(e, d) == []


class TestFixedRuleLP:
    def test_restricted_lp_respects_placement(self, i2_problem):
        # Enable rule 0 everywhere, others nowhere.
        fixed = {
            (i, node): (1 if i == 0 else 0)
            for i in range(i2_problem.num_rules)
            for node in i2_problem.topology.node_names
        }
        solution = solve_with_fixed_rules(i2_problem, fixed)
        for (i, pair, node), value in solution.d.items():
            if i != 0:
                assert value == 0.0
        assert i2_problem.check_feasible(solution.e, solution.d) == []

    def test_restricted_never_beats_relaxation(self, i2_problem):
        relaxed = solve_relaxation(i2_problem)
        fixed = {
            (i, node): (1 if i < 10 else 0)
            for i in range(i2_problem.num_rules)
            for node in i2_problem.topology.node_names
        }
        restricted = solve_with_fixed_rules(i2_problem, fixed)
        assert restricted.objective <= relaxed.objective + 1e-6

    def test_enabled_rules_listing(self, i2_problem):
        fixed = {
            (i, node): (1 if i in (2, 5) else 0)
            for i in range(i2_problem.num_rules)
            for node in i2_problem.topology.node_names
        }
        solution = solve_with_fixed_rules(i2_problem, fixed)
        node = i2_problem.topology.node_names[0]
        assert solution.enabled_rules(node) == [2, 5]


class TestDegenerateCapacity:
    def test_empty_placement_returns_zero_deployment(self, i2_problem):
        """A TCAM budget below one slot enables nothing; the restricted
        LP degenerates to the zero deployment instead of erroring."""
        solution = solve_with_fixed_rules(i2_problem, {})
        assert solution.objective == 0.0
        assert solution.d == {}

    def test_rounding_survives_sub_slot_budget(self):
        """The full rounding pipeline on a problem whose TCAM cannot
        hold even one rule yields the (feasible) zero deployment."""
        import random

        from repro.core.rounding import RoundingVariant, rounded_deployment

        problem = small_problem(num_rules=3, cam=0.5, num_nodes=4)
        from repro.core.nips_milp import solve_relaxation as _relax

        relaxed = _relax(problem)
        result = rounded_deployment(
            problem, RoundingVariant.GREEDY_LP, random.Random(0), relaxed=relaxed
        )
        assert result.solution.objective == 0.0
        assert problem.check_feasible(result.solution.e, result.solution.d) == []
