"""Batch dispatch fast path: bit-identical to the scalar Fig. 3 path.

The vectorized engine (``decide_batch`` / ``sampled_modules_batch`` /
``BroInstance(batch_dispatch=True)``) is an optimization, not a
semantic change: every test here asserts *exact* equality with the
per-session scalar procedure — same modules, same coordination units,
bit-identical hash values, identical analyze verdicts, identical
emulation reports.
"""

import dataclasses

import numpy as np
import pytest

from repro.control.agent import Agent
from repro.control.bus import Bus
from repro.core.dispatch import CoordinatedDispatcher
from repro.core.manifest import full_manifest
from repro.core.nids_deployment import plan_deployment
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import EmulationConfig
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator


@pytest.fixture(scope="module")
def deployment_setup():
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=51))
    sessions = generator.generate(2000)
    deployment = plan_deployment(topo, paths, STANDARD_MODULES, sessions)
    return topo, generator, sessions, deployment


class TestDispatcherEquivalence:
    def test_decide_batch_matches_decide_session(self, deployment_setup):
        """decide_batch == [decide_session(s) for s] field for field,
        on every node of the deployment."""
        topo, _, sessions, deployment = deployment_setup
        for node in topo.node_names:
            dispatcher = deployment.dispatcher(node)
            batch = dispatcher.decide_batch(sessions[:400])
            for session, decisions in zip(sessions[:400], batch):
                scalar = dispatcher.decide_session(session)
                assert len(decisions) == len(scalar)
                for got, want in zip(decisions, scalar):
                    assert got.module is want.module
                    assert got.unit == want.unit
                    assert got.hash_value == want.hash_value  # bit-exact
                    assert got.analyze == want.analyze

    def test_sampled_modules_batch_matches_should_analyze(self, deployment_setup):
        topo, _, sessions, deployment = deployment_setup
        for node in topo.node_names[:4]:
            dispatcher = deployment.dispatcher(node)
            batch = dispatcher.sampled_modules_batch(sessions[:500])
            for session, sampled in zip(sessions[:500], batch):
                expected = [
                    spec
                    for spec in deployment.modules
                    if dispatcher.should_analyze(spec, session)
                ]
                assert sampled == expected

    def test_batch_with_cold_cache_matches_warm(self, deployment_setup):
        """A dispatcher with a private empty cache batches identically
        to one sharing the deployment-wide warm cache."""
        topo, _, sessions, deployment = deployment_setup
        node = topo.node_names[2]
        warm = deployment.dispatcher(node)
        cold = CoordinatedDispatcher(
            node=node,
            manifest=deployment.manifests[node],
            modules=deployment.modules,
            resolver=deployment.resolver,
            hash_seed=deployment.hash_seed,
        )
        warm_batch = warm.sampled_modules_batch(sessions[:300])
        cold_batch = cold.sampled_modules_batch(sessions[:300])
        assert warm_batch == cold_batch

    def test_empty_and_singleton_batches(self, deployment_setup):
        topo, _, sessions, deployment = deployment_setup
        dispatcher = deployment.dispatcher(topo.node_names[0])
        assert dispatcher.decide_batch([]) == []
        assert dispatcher.sampled_modules_batch([]) == []
        single = dispatcher.decide_batch(sessions[:1])
        assert len(single) == 1
        scalar = dispatcher.decide_session(sessions[0])
        assert [d.hash_value for d in single[0]] == [d.hash_value for d in scalar]

    def test_full_manifest_batch_analyzes_all_matched(self, deployment_setup):
        _, _, sessions, deployment = deployment_setup
        dispatcher = CoordinatedDispatcher(
            node="STTL",
            manifest=full_manifest("STTL"),
            modules=STANDARD_MODULES,
            resolver=deployment.resolver,
        )
        for decisions in dispatcher.decide_batch(sessions[:200]):
            for decision in decisions:
                assert decision.analyze


class TestEmulationEquivalence:
    def test_batch_emulation_report_identical_to_scalar(self, deployment_setup):
        """Coordinated emulation with ``batch_dispatch=True`` produces
        the exact report of the scalar path: same CPU, memory,
        connection counts, per-module loads — on every node."""
        topo, generator, sessions, deployment = deployment_setup
        # Fresh private hash caches so neither run warms the other.
        dep_a = dataclasses.replace(deployment, _shared_hash_cache={})
        dep_b = dataclasses.replace(deployment, _shared_hash_cache={})
        traffic = Traffic.materialized(generator, sessions)
        scalar = run_emulation(
            traffic, dep_a, config=EmulationConfig(batch_dispatch=False)
        )
        batch = run_emulation(
            traffic, dep_b, config=EmulationConfig(batch_dispatch=True)
        )
        assert set(scalar.reports) == set(batch.reports)
        for node in scalar.reports:
            a, b = scalar.reports[node], batch.reports[node]
            assert a.cpu == b.cpu
            assert a.mem_bytes == b.mem_bytes
            assert a.tracked_connections == b.tracked_connections
            assert a.module_cpu == b.module_cpu
            assert a.module_items == b.module_items


class TestAgentBatchQueries:
    def test_batch_queries_match_scalar(self, deployment_setup):
        topo, _, sessions, deployment = deployment_setup
        node = topo.node_names[1]
        agent = Agent(node=node, bus=Bus())
        agent.manifest = deployment.manifests[node]
        hashes = np.linspace(0.0, 1.0 - 2.0**-32, 257)
        entry_keys = list(deployment.manifests[node].entries)
        assert entry_keys, "node holds no manifest entries"
        for class_name, key in entry_keys[:5]:
            new_batch = agent.responsible_for_new_batch(class_name, key, hashes)
            existing_batch = agent.responsible_for_existing_batch(
                class_name, key, hashes
            )
            for value, got_new, got_existing in zip(
                hashes, new_batch, existing_batch
            ):
                assert got_new == agent.responsible_for_new(class_name, key, value)
                assert got_existing == agent.responsible_for_existing(
                    class_name, key, value
                )

    def test_batch_queries_during_transition_window(self, deployment_setup):
        """During the dual-manifest window the existing-connection query
        is the union of the current and retiring manifests."""
        topo, _, _, deployment = deployment_setup
        node = topo.node_names[1]
        agent = Agent(node=node, bus=Bus())
        agent.manifest = deployment.manifests[node]
        agent.retiring = (full_manifest(node), 10.0)
        class_name, key = next(iter(deployment.manifests[node].entries))
        hashes = np.linspace(0.0, 0.999, 101)
        existing = agent.responsible_for_existing_batch(class_name, key, hashes)
        assert existing.all()  # retiring full manifest claims everything
        new = agent.responsible_for_new_batch(class_name, key, hashes)
        expected_new = [
            agent.responsible_for_new(class_name, key, v) for v in hashes
        ]
        assert new.tolist() == expected_new

    def test_dead_agent_batch_claims_nothing(self, deployment_setup):
        topo, _, _, deployment = deployment_setup
        node = topo.node_names[1]
        agent = Agent(node=node, bus=Bus())
        agent.manifest = deployment.manifests[node]
        agent.crash()
        class_name, key = next(iter(deployment.manifests[node].entries))
        hashes = np.array([0.1, 0.5, 0.9])
        assert not agent.responsible_for_new_batch(class_name, key, hashes).any()
        assert not agent.responsible_for_existing_batch(
            class_name, key, hashes
        ).any()
