"""Sharded emulation: exact merging, spawn safety, and the nesting guard.

The tentpole invariant: ``run_emulation`` under a sharded
:class:`ExecutionPolicy` — any worker count, any chunk size — produces
a :class:`DeploymentUsage` that is bit-identical (``float.hex``
compared) to the inline and streamed paths.  Wall-clock metric
families are excluded from merged telemetry by construction, so the
merged counters are also identical across worker counts.
"""

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.nids_deployment import plan_deployment
from repro.experiments import scaled
from repro.nids.emulation import Traffic, run_emulation
from repro.nids.engine import (
    EmulationConfig,
    ExecutionMode,
    ExecutionPolicy,
)
from repro.nids.modules import STANDARD_MODULES, module_set
from repro.nids.shard import (
    FORCE_INLINE_ENV,
    NONDETERMINISTIC_SUFFIXES,
    in_worker_process,
    plan_shards,
    run_shard_payload,
)
from repro.obs import MetricsRegistry
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator
from repro.traffic.batch import SessionBatch


def sharded_config(jobs: int, chunk_size: int = 50_000) -> EmulationConfig:
    return EmulationConfig(
        policy=ExecutionPolicy.sharded(jobs=jobs, chunk_size=chunk_size)
    )


def assert_bit_identical(actual, expected):
    """Float-hex equality of two DeploymentUsage objects, per node."""
    assert set(actual.reports) == set(expected.reports)
    for node in expected.reports:
        a, b = actual.reports[node], expected.reports[node]
        assert float(a.cpu).hex() == float(b.cpu).hex(), node
        assert float(a.mem_bytes).hex() == float(b.mem_bytes).hex(), node
        assert a.tracked_connections == b.tracked_connections, node
        assert set(a.module_cpu) == set(b.module_cpu), node
        for module, cpu in b.module_cpu.items():
            assert float(a.module_cpu[module]).hex() == float(cpu).hex(), (
                node,
                module,
            )
        assert a.module_items == b.module_items, node
    assert actual.to_dict() == expected.to_dict()


def _world(num_sessions: int, seed: int, num_modules: int = 8):
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=seed))
    sessions = generator.generate(num_sessions)
    modules = module_set(num_modules)
    deployment = plan_deployment(topo, paths, modules, sessions)
    return generator, sessions, modules, deployment


@pytest.fixture(scope="module")
def paper_world():
    """The acceptance-scale workload (paper volume: 100k sessions)."""
    return _world(scaled(100_000, minimum=5_000), seed=23)


@pytest.fixture(scope="module")
def small_world():
    return _world(2_500, seed=29)


class TestPlanShards:
    def test_one_shard_per_node_when_small(self):
        traces = {"A": [1, 2, 3], "B": [4], "C": []}
        shards = plan_shards(traces, chunk_size=10, allow_chunking=True)
        assert shards == [("A", [1, 2, 3]), ("B", [4])]

    def test_hot_nodes_chunked_contiguously(self):
        traces = {"A": list(range(7))}
        shards = plan_shards(traces, chunk_size=3, allow_chunking=True)
        assert [trace for _, trace in shards] == [[0, 1, 2], [3, 4, 5], [6]]
        assert all(node == "A" for node, _ in shards)

    def test_detector_runs_never_chunk(self):
        traces = {"A": list(range(7))}
        shards = plan_shards(traces, chunk_size=3, allow_chunking=False)
        assert shards == [("A", list(range(7)))]


class TestShardInvariance:
    """1 vs N shards vs sequential vs streamed — all bit-identical."""

    @pytest.fixture(scope="class")
    def baselines(self, paper_world):
        generator, sessions, modules, deployment = paper_world
        traffic = Traffic.materialized(generator, sessions)
        inline = EmulationConfig()
        return {
            "traffic": traffic,
            "edge": run_emulation(traffic, modules, config=inline),
            "coordinated": run_emulation(traffic, deployment, config=inline),
        }

    def test_streamed_matches_inline(self, paper_world, baselines):
        generator, sessions, modules, deployment = paper_world
        config = EmulationConfig(policy=ExecutionPolicy.streamed(chunk_size=7_919))
        streamed_edge = run_emulation(baselines["traffic"], modules, config=config)
        streamed_coord = run_emulation(
            baselines["traffic"], deployment, config=config
        )
        assert_bit_identical(streamed_edge, baselines["edge"])
        assert_bit_identical(streamed_coord, baselines["coordinated"])

    @pytest.mark.parametrize(
        "jobs,chunk_divisor",
        [(1, 1), (2, 7)],
        ids=["one-worker-whole-nodes", "two-workers-chunked"],
    )
    def test_sharded_matches_inline(
        self, paper_world, baselines, jobs, chunk_divisor
    ):
        generator, sessions, modules, deployment = paper_world
        chunk = max(1, len(sessions) // chunk_divisor)
        config = sharded_config(jobs=jobs, chunk_size=chunk)
        sharded_edge = run_emulation(baselines["traffic"], modules, config=config)
        sharded_coord = run_emulation(
            baselines["traffic"], deployment, config=config
        )
        assert_bit_identical(sharded_edge, baselines["edge"])
        assert_bit_identical(sharded_coord, baselines["coordinated"])


class TestShardMetrics:
    def test_shard_families_recorded(self, small_world):
        generator, sessions, modules, deployment = small_world
        registry = MetricsRegistry()
        traffic = Traffic.materialized(generator, sessions)
        run_emulation(
            traffic,
            deployment,
            config=sharded_config(jobs=2, chunk_size=500),
            registry=registry,
        )
        traces = generator.split_by_node(list(sessions), transit=True)
        expected = plan_shards(traces, chunk_size=500, allow_chunking=True)
        nonempty_nodes = sum(1 for trace in traces.values() if trace)
        assert len(expected) > nonempty_nodes  # chunking split hot nodes
        assert registry.get("engine_shard_tasks_total").total() == len(expected)
        assert registry.get("engine_shard_sessions_total").total() == sum(
            len(trace) for trace in traces.values()
        )
        assert registry.get("engine_shard_workers").value() == 2

    def test_merged_counters_identical_across_worker_counts(self, small_world):
        generator, sessions, modules, deployment = small_world
        traffic = Traffic.materialized(generator, sessions)
        snapshots = []
        for jobs in (1, 2):
            registry = MetricsRegistry()
            run_emulation(
                traffic,
                deployment,
                config=sharded_config(jobs=jobs, chunk_size=400),
                registry=registry,
            )
            snap = registry.snapshot()
            snapshots.append(
                {
                    name: entry
                    for name, entry in snap["metrics"].items()
                    if not name.endswith(NONDETERMINISTIC_SUFFIXES)
                    and name != "engine_shard_workers"
                }
            )
        assert snapshots[0] == snapshots[1]

    def test_worker_counters_match_inline_run(self, small_world):
        """The merged per-node telemetry equals what one process records."""
        generator, sessions, modules, deployment = small_world
        traffic = Traffic.materialized(generator, sessions)
        inline_registry = MetricsRegistry()
        run_emulation(
            traffic, deployment, config=EmulationConfig(), registry=inline_registry
        )
        sharded_registry = MetricsRegistry()
        run_emulation(
            traffic,
            deployment,
            config=sharded_config(jobs=2, chunk_size=100_000),
            registry=sharded_registry,
        )
        counter = "dispatch_sessions_total"
        assert (
            sharded_registry.get(counter).total()
            == inline_registry.get(counter).total()
        )


class TestDetectorSharding:
    def test_detector_alerts_identical_under_sharding(self, small_world):
        generator, sessions, modules, deployment = small_world
        traffic = Traffic.materialized(generator, sessions)
        detect_inline = EmulationConfig(run_detectors=True)
        detect_sharded = EmulationConfig(
            run_detectors=True,
            policy=ExecutionPolicy.sharded(jobs=2, chunk_size=50),
        )
        inline = run_emulation(traffic, deployment, config=detect_inline)
        sharded = run_emulation(traffic, deployment, config=detect_sharded)
        assert sharded.alert_keys() == inline.alert_keys()
        for node in inline.reports:
            assert [a.key() for a in sharded.reports[node].alerts] == [
                a.key() for a in inline.reports[node].alerts
            ], node


class TestSpawnPickling:
    """Everything a shard payload carries must survive pickling."""

    def test_module_spec_roundtrip(self):
        for spec in STANDARD_MODULES:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec

    def test_emulation_config_roundtrip(self):
        config = EmulationConfig(
            run_detectors=True,
            policy=ExecutionPolicy.sharded(jobs=3, chunk_size=123),
        )
        clone = pickle.loads(pickle.dumps(config))
        assert clone.run_detectors is True
        assert clone.policy.mode is ExecutionMode.SHARDED
        assert clone.policy.jobs == 3
        assert clone.policy.chunk_size == 123

    def test_session_batch_roundtrip(self, small_world):
        generator, sessions, _, _ = small_world
        batch = SessionBatch(sessions[:200])
        clone = pickle.loads(pickle.dumps(batch))
        assert list(clone.session_ids) == list(batch.session_ids)
        assert list(clone.pkts) == list(batch.pkts)
        assert clone.pairs == batch.pairs

    def test_worker_entrypoint_is_spawn_importable(self):
        assert run_shard_payload.__module__ == "repro.nids.shard"
        module = __import__(
            run_shard_payload.__module__, fromlist=["run_shard_payload"]
        )
        assert getattr(module, "run_shard_payload") is run_shard_payload


class TestNestingGuard:
    def test_parent_process_forces_inline(self, small_world, monkeypatch):
        generator, sessions, modules, deployment = small_world
        monkeypatch.setattr(
            multiprocessing, "parent_process", lambda: object()
        )
        assert in_worker_process()
        registry = MetricsRegistry()
        traffic = Traffic.materialized(generator, sessions)
        usage = run_emulation(
            traffic,
            deployment,
            config=sharded_config(jobs=2, chunk_size=100),
            registry=registry,
        )
        assert registry.get("engine_shard_fallback_total").total() == 1
        assert registry.get("engine_shard_tasks_total") is None
        inline = run_emulation(traffic, deployment, config=EmulationConfig())
        assert_bit_identical(usage, inline)

    def test_env_override_forces_inline(self, small_world, monkeypatch):
        generator, sessions, modules, _ = small_world
        monkeypatch.setenv(FORCE_INLINE_ENV, "1")
        assert in_worker_process()
        registry = MetricsRegistry()
        run_emulation(
            Traffic.materialized(generator, sessions),
            modules,
            config=sharded_config(jobs=2),
            registry=registry,
        )
        assert registry.get("engine_shard_fallback_total").total() == 1

    def test_real_spawned_child_falls_back(self):
        """A genuine worker process (what a sweep cell is) demotes a
        sharded policy to inline instead of nesting a pool."""
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            fallbacks, tasks = pool.submit(_nested_shard_probe).result(timeout=300)
        assert fallbacks == 1
        assert tasks == 0


def _nested_shard_probe():
    """Run a tiny sharded emulation from inside a worker process.

    Module-level so the spawn child can import it; builds its own small
    edge-only world to keep the probe fast.
    """
    topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
    paths = PathSet(topo)
    generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=3))
    sessions = generator.generate(300)
    registry = MetricsRegistry()
    run_emulation(
        Traffic.materialized(generator, sessions),
        STANDARD_MODULES,
        config=sharded_config(jobs=2, chunk_size=50),
        registry=registry,
    )
    fallback = registry.get("engine_shard_fallback_total")
    tasks = registry.get("engine_shard_tasks_total")
    return (
        fallback.total() if fallback is not None else 0,
        tasks.total() if tasks is not None else 0,
    )


class TestTraffic:
    def test_exactly_one_source_required(self, small_world):
        generator, sessions, _, _ = small_world
        with pytest.raises(ValueError):
            Traffic(generator)
        with pytest.raises(ValueError):
            Traffic(generator, sessions=sessions, num_sessions=10)

    def test_generate_source_materializes_deterministically(self, small_world):
        generator, sessions, _, _ = small_world
        traffic = Traffic.generate(generator, len(sessions))
        assert traffic.materialize() == list(sessions)

    def test_materialized_chunk_iter_slices(self, small_world):
        generator, sessions, _, _ = small_world
        traffic = Traffic.materialized(generator, sessions)
        chunks = list(traffic.chunk_iter(700))
        assert [s for chunk in chunks for s in chunk] == list(sessions)
        assert all(len(chunk) <= 700 for chunk in chunks)
