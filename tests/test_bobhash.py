"""Tests for the Bob (Jenkins lookup3) hash implementation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.bobhash import bob_hash, bob_hash_pair, hash_unit


class TestPublishedVectors:
    """lookup3.c's self-test anchors for hashlittle()."""

    def test_empty_zero_seed(self):
        assert bob_hash(b"", 0) == 0xDEADBEEF

    def test_empty_deadbeef_seed(self):
        assert bob_hash(b"", 0xDEADBEEF) == 0xBD5B7DDE

    def test_four_score_seed0(self):
        assert bob_hash(b"Four score and seven years ago", 0) == 0x17770551

    def test_four_score_seed1(self):
        assert bob_hash(b"Four score and seven years ago", 1) == 0xCD628161


class TestBasicProperties:
    def test_deterministic(self):
        data = b"\x01\x02\x03\x04network"
        assert bob_hash(data, 7) == bob_hash(data, 7)

    def test_seed_changes_output(self):
        data = b"flow-key-material"
        assert bob_hash(data, 0) != bob_hash(data, 1)

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            bob_hash("not bytes")  # type: ignore[arg-type]

    def test_32_bit_range(self):
        for length in range(0, 40):
            value = bob_hash(bytes(range(length % 256)) * (length // 256 + 1))
            assert 0 <= value <= 0xFFFFFFFF

    @pytest.mark.parametrize("length", list(range(0, 26)) + [100, 1000])
    def test_all_tail_lengths(self, length):
        """Every tail length 0..12 (and beyond) hashes without error
        and differs from its one-byte-shorter prefix."""
        data = bytes((i * 37 + 11) % 256 for i in range(length))
        value = bob_hash(data)
        assert 0 <= value <= 0xFFFFFFFF
        if length:
            assert value != bob_hash(data[:-1])

    def test_single_bit_avalanche(self):
        """Flipping one input bit flips a substantial share of output
        bits on average (weak avalanche check)."""
        base = bytes(range(16))
        reference = bob_hash(base)
        flipped_bits = []
        for byte_index in range(len(base)):
            for bit in range(8):
                mutated = bytearray(base)
                mutated[byte_index] ^= 1 << bit
                flipped = bob_hash(bytes(mutated))
                flipped_bits.append(bin(reference ^ flipped).count("1"))
        mean_flips = sum(flipped_bits) / len(flipped_bits)
        assert 10 <= mean_flips <= 22  # ~16 expected for a good 32-bit hash


class TestHashUnit:
    def test_in_unit_interval(self):
        for i in range(200):
            value = hash_unit(i.to_bytes(4, "big"))
            assert 0.0 <= value < 1.0

    def test_uniformity_over_buckets(self):
        """Chi-square-style check: 10 buckets over 5000 keys should
        each hold roughly 500."""
        buckets = [0] * 10
        for i in range(5000):
            buckets[int(hash_unit(i.to_bytes(8, "big")) * 10)] += 1
        expected = 5000 / 10
        chi2 = sum((b - expected) ** 2 / expected for b in buckets)
        # 9 degrees of freedom; 99.9th percentile is ~27.9.
        assert chi2 < 27.9

    def test_matches_bob_hash(self):
        data = b"some-flow"
        assert hash_unit(data, 3) == bob_hash(data, 3) / 2**32


class TestPairHash:
    def test_two_values(self):
        first, second = bob_hash_pair(b"abcdef")
        assert first != second
        assert 0 <= first <= 0xFFFFFFFF
        assert 0 <= second <= 0xFFFFFFFF

    def test_pair_deterministic(self):
        assert bob_hash_pair(b"xyz", 1, 2) == bob_hash_pair(b"xyz", 1, 2)

    def test_second_depends_on_second_seed(self):
        _, s1 = bob_hash_pair(b"xyz", 0, 1)
        _, s2 = bob_hash_pair(b"xyz", 0, 2)
        assert s1 != s2


@given(data=st.binary(max_size=64), seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200, deadline=None)
def test_property_output_range_and_determinism(data, seed):
    value = bob_hash(data, seed)
    assert 0 <= value <= 0xFFFFFFFF
    assert bob_hash(data, seed) == value


@given(data=st.binary(min_size=1, max_size=32))
@settings(max_examples=100, deadline=None)
def test_property_prefix_sensitivity(data):
    """Appending a byte (almost always) changes the digest."""
    extended = data + b"\x00"
    # Not a strict guarantee for any hash, but collisions at rate
    # 2^-32 will not appear in 100 examples.
    assert bob_hash(data) != bob_hash(extended)
