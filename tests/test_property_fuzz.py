"""Property-based fuzzing of the optimization pipelines.

Hypothesis drives randomized instances through the full NIDS and NIPS
pipelines, asserting the invariants DESIGN.md §6 lists.  Example counts
are modest because each example is an LP solve.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.manifest import generate_manifests, verify_manifests
from repro.core.nids_lp import solve_nids_lp
from repro.core.nips_milp import build_nips_problem, solve_relaxation
from repro.core.rounding import RoundingVariant, rounded_deployment
from repro.core.units import CoordinationUnit, build_units
from repro.nids.modules import STANDARD_MODULES
from repro.nips.rules import MatchRateMatrix, unit_rules
from repro.topology import PathSet, internet2, random_pop_topology
from repro.traffic import GeneratorConfig, TrafficGenerator

_FUZZ_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_nodes=st.integers(min_value=3, max_value=9),
    num_units=st.integers(min_value=1, max_value=25),
)
@settings(**_FUZZ_SETTINGS)
def test_fuzz_nids_lp_and_manifests(seed, num_nodes, num_units):
    """Random unit collections: the LP always covers, loads match the
    objective, and manifests verify."""
    rng = random.Random(seed)
    topology = random_pop_topology(num_nodes, seed=seed).set_uniform_capacities(
        cpu=rng.uniform(0.5, 2.0), mem=rng.uniform(0.5, 2.0)
    )
    names = topology.node_names
    units = []
    for index in range(num_units):
        eligible = tuple(
            rng.sample(names, rng.randint(1, min(4, len(names))))
        )
        items = rng.uniform(1, 500)
        units.append(
            CoordinationUnit(
                class_name=f"c{index % 3}",
                key=(f"u{index}",),
                eligible=eligible,
                pkts=rng.uniform(1, 5_000),
                items=items,
                cpu_work=rng.uniform(0, 2_000),
                mem_bytes=items * rng.uniform(10, 500),
            )
        )
    assignment = solve_nids_lp(units, topology)
    # Coverage invariant.
    for unit in units:
        total = sum(
            assignment.fraction(unit.class_name, unit.key, node)
            for node in unit.eligible
        )
        assert total == pytest.approx(1.0, abs=1e-6)
    # Objective is the max load.
    assert assignment.objective == pytest.approx(
        max(assignment.max_cpu_load, assignment.max_mem_load), rel=1e-5, abs=1e-8
    )
    # Manifests verify.
    manifests = generate_manifests(units, assignment, names)
    verify_manifests(units, manifests)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_rules=st.integers(min_value=2, max_value=8),
    cam=st.floats(min_value=1.0, max_value=4.0),
    variant=st.sampled_from(list(RoundingVariant)),
)
@settings(**_FUZZ_SETTINGS)
def test_fuzz_nips_rounding_always_feasible(seed, num_rules, cam, variant):
    """Random NIPS instances: every rounding variant yields a feasible
    deployment bounded by OptLP."""
    rng = random.Random(seed)
    topology = random_pop_topology(
        rng.randint(4, 7), seed=seed
    ).set_uniform_capacities(
        cpu=rng.uniform(1e5, 1e6), mem=rng.uniform(2e4, 2e5), cam=cam
    )
    rules = unit_rules(num_rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, rng)
    problem = build_nips_problem(
        topology, rules, match, total_flows=3e5, total_packets=1.5e6
    )
    relaxed = solve_relaxation(problem)
    result = rounded_deployment(problem, variant, random.Random(seed + 1), relaxed=relaxed)
    # rounded_deployment raises on infeasibility internally; re-check.
    assert problem.check_feasible(result.solution.e, result.solution.d) == []
    assert result.solution.objective <= relaxed.objective + 1e-6


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=8, deadline=None)
def test_fuzz_unit_building_order_invariant(seed):
    """Units derived from a shuffled trace equal the originals."""
    topology = internet2()
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology, paths, config=GeneratorConfig(seed=seed)
    )
    sessions = generator.generate(300)
    shuffled = list(sessions)
    random.Random(seed).shuffle(shuffled)
    original = build_units(STANDARD_MODULES, sessions, paths)
    reordered = build_units(STANDARD_MODULES, shuffled, paths)
    assert [(u.ident, u.pkts, u.items) for u in original] == [
        (u.ident, u.pkts, u.items) for u in reordered
    ]
