"""Property-based fuzzing of the optimization pipelines.

Hypothesis drives randomized instances through the full NIDS and NIPS
pipelines, asserting the invariants DESIGN.md §6 lists.  Example counts
are modest because each example is an LP solve.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.manifest import generate_manifests, verify_manifests
from repro.core.nids_lp import solve_nids_lp
from repro.core.nips_milp import build_nips_problem, solve_relaxation
from repro.core.rounding import RoundingVariant, rounded_deployment
from repro.core.units import CoordinationUnit, build_units
from repro.nids.modules import STANDARD_MODULES
from repro.nips.rules import MatchRateMatrix, unit_rules
from repro.topology import PathSet, internet2, random_pop_topology
from repro.traffic import GeneratorConfig, TrafficGenerator

_FUZZ_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_nodes=st.integers(min_value=3, max_value=9),
    num_units=st.integers(min_value=1, max_value=25),
)
@settings(**_FUZZ_SETTINGS)
def test_fuzz_nids_lp_and_manifests(seed, num_nodes, num_units):
    """Random unit collections: the LP always covers, loads match the
    objective, and manifests verify."""
    rng = random.Random(seed)
    topology = random_pop_topology(num_nodes, seed=seed).set_uniform_capacities(
        cpu=rng.uniform(0.5, 2.0), mem=rng.uniform(0.5, 2.0)
    )
    names = topology.node_names
    units = []
    for index in range(num_units):
        eligible = tuple(
            rng.sample(names, rng.randint(1, min(4, len(names))))
        )
        items = rng.uniform(1, 500)
        units.append(
            CoordinationUnit(
                class_name=f"c{index % 3}",
                key=(f"u{index}",),
                eligible=eligible,
                pkts=rng.uniform(1, 5_000),
                items=items,
                cpu_work=rng.uniform(0, 2_000),
                mem_bytes=items * rng.uniform(10, 500),
            )
        )
    assignment = solve_nids_lp(units, topology)
    # Coverage invariant.
    for unit in units:
        total = sum(
            assignment.fraction(unit.class_name, unit.key, node)
            for node in unit.eligible
        )
        assert total == pytest.approx(1.0, abs=1e-6)
    # Objective is the max load.
    assert assignment.objective == pytest.approx(
        max(assignment.max_cpu_load, assignment.max_mem_load), rel=1e-5, abs=1e-8
    )
    # Manifests verify.
    manifests = generate_manifests(units, assignment, names)
    verify_manifests(units, manifests)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_rules=st.integers(min_value=2, max_value=8),
    cam=st.floats(min_value=1.0, max_value=4.0),
    variant=st.sampled_from(list(RoundingVariant)),
)
@settings(**_FUZZ_SETTINGS)
def test_fuzz_nips_rounding_always_feasible(seed, num_rules, cam, variant):
    """Random NIPS instances: every rounding variant yields a feasible
    deployment bounded by OptLP."""
    rng = random.Random(seed)
    topology = random_pop_topology(
        rng.randint(4, 7), seed=seed
    ).set_uniform_capacities(
        cpu=rng.uniform(1e5, 1e6), mem=rng.uniform(2e4, 2e5), cam=cam
    )
    rules = unit_rules(num_rules)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, rng)
    problem = build_nips_problem(
        topology, rules, match, total_flows=3e5, total_packets=1.5e6
    )
    relaxed = solve_relaxation(problem)
    result = rounded_deployment(problem, variant, random.Random(seed + 1), relaxed=relaxed)
    # rounded_deployment raises on infeasibility internally; re-check.
    assert problem.check_feasible(result.solution.e, result.solution.d) == []
    assert result.solution.objective <= relaxed.objective + 1e-6


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_nodes=st.integers(min_value=3, max_value=7),
    fine_grained=st.booleans(),
    mode_name=st.sampled_from(["coord-event", "coord-policy", "unmodified"]),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_fuzz_scalar_vs_batch_engine_decisions(seed, num_nodes, fine_grained, mode_name):
    """Random deployments: the vectorized engine agrees with the scalar
    one per (module, session) — match, Fig. 3 sampling, responsibility
    — and the full reports are bit-identical across tracking levels."""
    import dataclasses

    from repro.core.nids_deployment import plan_deployment
    from repro.nids.engine import BroInstance, BroMode, EmulationConfig
    from repro.traffic import SessionBatch

    mode = BroMode(mode_name)
    topology = random_pop_topology(num_nodes, seed=seed).set_uniform_capacities(
        cpu=1.0, mem=1.0
    )
    paths = PathSet(topology)
    generator = TrafficGenerator(topology, paths, config=GeneratorConfig(seed=seed))
    sessions = generator.generate(300)
    deployment = plan_deployment(topology, paths, STANDARD_MODULES, sessions)
    node = topology.node_names[seed % num_nodes]
    trace = generator.split_by_node(sessions, transit=True)[node]
    dispatcher = None if mode is BroMode.UNMODIFIED else deployment.dispatcher(node)
    config = EmulationConfig(fine_grained=fine_grained)
    scalar_instance = BroInstance(
        node, STANDARD_MODULES, mode, dispatcher,
        config=dataclasses.replace(config, batch_engine=False, batch_dispatch=False),
    )
    batch_instance = BroInstance(
        node, STANDARD_MODULES, mode, dispatcher, config=config
    )
    if dispatcher is not None and trace:
        decisions = dispatcher.batch_decisions(SessionBatch(trace))
        for spec, decision in zip(STANDARD_MODULES, decisions):
            for index, session in enumerate(trace):
                assert bool(decision.match[index]) == spec.traffic_filter.matches_session(
                    session
                )
                assert bool(decision.analyze[index]) == scalar_instance._sampled(
                    spec, session
                )
                assert bool(decision.responsible[index]) == scalar_instance._responsible(
                    spec, session
                )
    assert scalar_instance.process_sessions(trace) == batch_instance.process_sessions_batch(
        trace
    )


@given(
    lo=st.floats(min_value=0.0, max_value=0.999999),
    offset=st.floats(min_value=0.0, max_value=5e-9),
    probe=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_fuzz_epsilon_boundary_containment(lo, offset, probe):
    """Scalar and vectorized manifest membership agree everywhere —
    including ranges whose top lands within EPSILON of 1.0 (snapped
    closed) and probe values at the very top of the hash space."""
    import numpy as np

    from repro.core.manifest import NodeManifest
    from repro.core.manifest_index import ManifestIndex
    from repro.hashing.ranges import EPSILON, HashRange

    hi = min(1.0, max(lo, 1.0 - offset))
    manifest = NodeManifest(
        node="n", entries={("c", ("u",)): (HashRange(lo, hi),)}
    )
    index = ManifestIndex(manifest)
    probes = [
        probe,
        lo,
        hi,
        1.0,
        1.0 - EPSILON / 2,
        1.0 - 2 * EPSILON,
        max(0.0, lo - EPSILON / 2),
        min(1.0, hi + EPSILON / 2),
    ]
    scalar = [manifest.contains("c", ("u",), value) for value in probes]
    indexed = [index.contains("c", ("u",), value) for value in probes]
    batched = index.contains_batch("c", ("u",), np.array(probes))
    assert indexed == scalar
    assert list(batched) == scalar


@given(seed=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=8, deadline=None)
def test_fuzz_unit_building_order_invariant(seed):
    """Units derived from a shuffled trace equal the originals."""
    topology = internet2()
    paths = PathSet(topology)
    generator = TrafficGenerator(
        topology, paths, config=GeneratorConfig(seed=seed)
    )
    sessions = generator.generate(300)
    shuffled = list(sessions)
    random.Random(seed).shuffle(shuffled)
    original = build_units(STANDARD_MODULES, sessions, paths)
    reordered = build_units(STANDARD_MODULES, shuffled, paths)
    assert [(u.ident, u.pkts, u.items) for u in original] == [
        (u.ident, u.pkts, u.items) for u in reordered
    ]
