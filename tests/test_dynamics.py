"""Tests for traffic dynamics and 95th-percentile conservative planning."""

import pytest

from repro.core.reconfigure import conservative_units
from repro.core.nids_lp import solve_nids_lp
from repro.core.units import build_units
from repro.nids.modules import STANDARD_MODULES
from repro.topology import PathSet, internet2
from repro.traffic import GeneratorConfig, TrafficGenerator
from repro.traffic.dynamics import (
    DiurnalBurstModel,
    headroom_for_percentile,
    percentile,
)


class TestVolumeModel:
    def test_deterministic_series(self):
        a = DiurnalBurstModel(base_sessions=1000, seed=3).series(50)
        b = DiurnalBurstModel(base_sessions=1000, seed=3).series(50)
        assert a == b

    def test_diurnal_shape(self):
        model = DiurnalBurstModel(
            base_sessions=1000, diurnal_amplitude=0.5, period=100,
            burst_probability=0.0,
        )
        series = model.series(100)
        assert max(series) == pytest.approx(1500, rel=0.02)
        assert min(series) == pytest.approx(500, rel=0.02)

    def test_bursts_appear(self):
        model = DiurnalBurstModel(
            base_sessions=1000, diurnal_amplitude=0.0,
            burst_probability=0.2, burst_multiplier=3.0, seed=7,
        )
        series = model.series(200)
        bursts = sum(1 for v in series if v > 2000)
        assert 20 <= bursts <= 70  # ~20% of 200

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalBurstModel(base_sessions=0)
        with pytest.raises(ValueError):
            DiurnalBurstModel(base_sessions=10, diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            DiurnalBurstModel(base_sessions=10, burst_probability=-0.1)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_extremes(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 120)


class TestHeadroom:
    def test_flat_history_needs_no_headroom(self):
        assert headroom_for_percentile([100.0] * 20) == 1.0

    def test_bursty_history_demands_headroom(self):
        model = DiurnalBurstModel(
            base_sessions=1000, burst_probability=0.1, burst_multiplier=2.5, seed=5
        )
        headroom = headroom_for_percentile(model.series(300))
        assert headroom > 1.1

    def test_conservative_plan_survives_p95_interval(self):
        """The paper's §5 advice end-to-end: plan against the 95th-
        percentile volume; a p95-sized interval's load stays within the
        planned objective, while a mean-volume plan is exceeded."""
        topo = internet2().set_uniform_capacities(cpu=1.0, mem=1.0)
        paths = PathSet(topo)
        generator = TrafficGenerator(topo, paths, config=GeneratorConfig(seed=191))

        model = DiurnalBurstModel(
            base_sessions=1500, burst_probability=0.08,
            burst_multiplier=2.0, seed=9,
        )
        history = model.series(200)
        mean_volume = int(sum(history) / len(history))
        p95_volume = int(percentile(history, 95))
        assert p95_volume > mean_volume

        mean_units = build_units(
            STANDARD_MODULES, generator.generate(mean_volume), paths
        )
        headroom = headroom_for_percentile(history, 95)
        padded_plan = solve_nids_lp(conservative_units(mean_units, headroom), topo)
        mean_plan = solve_nids_lp(mean_units, topo)

        # A p95-sized interval: loads scale ~linearly with volume.
        p95_units = build_units(
            STANDARD_MODULES, generator.generate(p95_volume), paths
        )
        realized = solve_nids_lp(p95_units, topo).objective
        assert realized > mean_plan.objective  # mean plan under-provisions
        assert padded_plan.objective >= realized * 0.95  # p95 plan holds
