"""Tests for TCAM-constrained online adaptation (§3.5 future work)."""

import random

import pytest

from repro.core.nips_milp import build_nips_problem
from repro.core.online import state_vector
from repro.core.online_tcam import (
    TCAMFPLConfig,
    TCAMOnlineAdapter,
    _rates_from_weights,
    approximate_oracle,
    run_tcam_online,
)
from repro.nips.adversary import UniformProcess
from repro.nips.rules import MatchRateMatrix, unit_rules
from repro.topology import random_pop_topology


@pytest.fixture(scope="module")
def problem():
    topology = random_pop_topology(5, seed=41).set_uniform_capacities(
        cpu=300_000.0, mem=60_000.0, cam=2.0
    )
    rules = unit_rules(5)
    pairs = [
        (a, b) for a in topology.node_names for b in topology.node_names if a != b
    ]
    match = MatchRateMatrix.uniform(rules, pairs, random.Random(41))
    return build_nips_problem(
        topology, rules, match, total_flows=400_000.0, total_packets=1_800_000.0
    )


class TestRateRecovery:
    def test_weights_roundtrip_to_rates(self, problem):
        """state_vector followed by _rates_from_weights recovers M."""
        rates = {
            (rule.index, pair): 0.003 + 0.001 * rule.index
            for rule in problem.rules
            for pair in problem.pairs
        }
        weights = state_vector(problem, rates)
        recovered = _rates_from_weights(problem, weights)
        for key, rate in rates.items():
            assert recovered.rate(*key) == pytest.approx(rate, rel=1e-9)


class TestOracle:
    def test_oracle_respects_tcam(self, problem):
        rates = {
            (rule.index, pair): 0.005
            for rule in problem.rules
            for pair in problem.pairs
        }
        weights = state_vector(problem, rates)
        solution = approximate_oracle(problem, weights, seed=1)
        assert problem.check_feasible(solution.e, solution.d) == []
        for node in problem.topology.node_names:
            assert len(solution.enabled_rules(node)) <= 2  # cam capacity


class TestAdapter:
    def test_every_epoch_feasible(self, problem):
        adapter = TCAMOnlineAdapter(problem, TCAMFPLConfig(epochs=3, seed=2))
        process = UniformProcess(problem, seed=2)
        for epoch in range(1, 4):
            decision = adapter.decide()
            assert problem.check_feasible(decision.e, decision.d) == []
            adapter.observe(process(epoch, None))

    def test_short_run_regret_bounded(self, problem):
        """Against i.i.d. rates, the adapter's cumulative value stays
        within a reasonable factor of the hindsight oracle."""
        process = UniformProcess(problem, seed=3)
        result = run_tcam_online(
            problem, process, TCAMFPLConfig(epochs=8, seed=3)
        )
        assert result.per_epoch_feasible
        assert result.static_total > 0
        # alpha-regret: allow slack for the approximate oracle and the
        # cold-start epochs of a very short run.
        assert result.normalized_regret <= 0.5
        assert result.fpl_total > 0
