"""Tests for hash-range interval algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.ranges import (
    EPSILON,
    HashRange,
    WrappedRange,
    are_disjoint,
    coverage_depth,
    covers_unit_interval,
    total_length,
)


class TestHashRange:
    def test_basic_contains(self):
        r = HashRange(0.25, 0.5)
        assert r.contains(0.25)
        assert r.contains(0.4)
        assert not r.contains(0.5)
        assert not r.contains(0.1)

    def test_top_of_space_closed(self):
        r = HashRange(0.9, 1.0)
        assert r.contains(1.0)
        assert r.contains(0.95)

    def test_epsilon_shortfall_at_top_not_dropped(self):
        """Regression: a topmost range whose hi is within EPSILON of 1.0
        (solver-epsilon shortfall) must behave as closed at 1.0.

        Before the fix, HashRange(0.5, 1.0 - 5e-10).contains(1.0 - 1e-12)
        returned False even though covers_unit_interval accepted the
        manifest, so hash values in (hi, 1.0) were analyzed by NO node.
        """
        r = HashRange(0.5, 1.0 - 5e-10)
        assert r.contains(1.0 - 1e-12)
        assert r.contains(1.0 - 2e-10)
        assert r.contains(1.0)
        assert not r.contains(0.499)

    def test_epsilon_shortfall_manifest_drops_no_probe(self):
        """The pre-fix failure mode end to end: ranges that pass the
        coverage check must claim every probe up to the top."""
        ranges = [HashRange(0.0, 0.5), HashRange(0.5, 1.0 - 5e-10)]
        assert covers_unit_interval(ranges, fold=1)
        for probe in (0.0, 0.25, 0.5, 0.999, 1.0 - 2e-10, 1.0 - 1e-12):
            assert coverage_depth(ranges, probe) == 1

    def test_interior_ranges_stay_half_open(self):
        """The closed-top extension applies only near 1.0."""
        r = HashRange(0.2, 0.6)
        assert r.contains(0.6 - 1e-12)
        assert not r.contains(0.6)
        assert not r.contains(0.6 + 1e-12)

    def test_length_and_empty(self):
        assert HashRange(0.2, 0.7).length == pytest.approx(0.5)
        assert HashRange(0.3, 0.3).empty
        assert not HashRange(0.3, 0.4).empty

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            HashRange(0.5, 0.2)
        with pytest.raises(ValueError):
            HashRange(-0.2, 0.5)
        with pytest.raises(ValueError):
            HashRange(0.5, 1.5)

    def test_overlaps(self):
        assert HashRange(0.0, 0.5).overlaps(HashRange(0.4, 0.8))
        assert not HashRange(0.0, 0.5).overlaps(HashRange(0.5, 0.8))

    def test_intersection_length(self):
        a, b = HashRange(0.0, 0.6), HashRange(0.4, 1.0)
        assert a.intersection_length(b) == pytest.approx(0.2)
        assert b.intersection_length(a) == pytest.approx(0.2)
        assert a.intersection_length(HashRange(0.7, 0.9)) == 0.0


class TestWrappedRange:
    def test_non_wrapping_single_piece(self):
        pieces = WrappedRange(0.2, 0.3).pieces()
        assert pieces == [HashRange(0.2, 0.5)]

    def test_wrapping_two_pieces(self):
        pieces = WrappedRange(0.8, 0.5).pieces()
        assert len(pieces) == 2
        assert pieces[0] == HashRange(0.8, 1.0)
        assert pieces[1].lo == pytest.approx(0.0)
        assert pieces[1].hi == pytest.approx(0.3)

    def test_full_circle(self):
        assert WrappedRange(0.4, 1.0).pieces() == [HashRange(0.0, 1.0)]

    def test_zero_length(self):
        assert WrappedRange(0.3, 0.0).pieces() == []

    def test_start_beyond_one_is_modded(self):
        pieces = WrappedRange(1.25, 0.25).pieces()
        assert pieces == [HashRange(0.25, 0.5)]

    def test_contains_wraps(self):
        arc = WrappedRange(0.9, 0.2)
        assert arc.contains(0.95)
        assert arc.contains(0.05)
        assert not arc.contains(0.5)

    def test_length_cap(self):
        with pytest.raises(ValueError):
            WrappedRange(0.0, 1.2)

    def test_total_measure_preserved(self):
        for start in (0.0, 0.3, 0.77, 0.999):
            for length in (0.0, 0.1, 0.5, 0.9999):
                pieces = WrappedRange(start, length).pieces()
                assert total_length(pieces) == pytest.approx(length, abs=1e-9)


class TestCoverage:
    def test_exact_partition_covers(self):
        ranges = [HashRange(0.0, 0.3), HashRange(0.3, 0.75), HashRange(0.75, 1.0)]
        assert covers_unit_interval(ranges, fold=1)
        assert are_disjoint(ranges)

    def test_gap_detected(self):
        ranges = [HashRange(0.0, 0.3), HashRange(0.4, 1.0)]
        assert not covers_unit_interval(ranges, fold=1)

    def test_overlap_detected_as_wrong_fold(self):
        ranges = [HashRange(0.0, 0.6), HashRange(0.4, 1.0)]
        assert not covers_unit_interval(ranges, fold=1)
        assert not are_disjoint(ranges)

    def test_double_cover(self):
        ranges = [
            HashRange(0.0, 1.0),
            HashRange(0.0, 0.5),
            HashRange(0.5, 1.0),
        ]
        assert covers_unit_interval(ranges, fold=2)
        assert not covers_unit_interval(ranges, fold=1)

    def test_empty_set(self):
        assert covers_unit_interval([], fold=0)
        assert not covers_unit_interval([], fold=1)

    def test_coverage_depth(self):
        ranges = [HashRange(0.0, 0.5), HashRange(0.25, 0.75)]
        assert coverage_depth(ranges, 0.1) == 1
        assert coverage_depth(ranges, 0.3) == 2
        assert coverage_depth(ranges, 0.8) == 0


@given(
    cuts=st.lists(
        st.floats(min_value=0.001, max_value=0.999), min_size=1, max_size=10
    )
)
@settings(max_examples=200, deadline=None)
def test_property_partition_always_covers(cuts):
    """Any sorted cut sequence partitions [0,1] into a 1-fold cover."""
    points = sorted(set(cuts))
    boundaries = [0.0] + points + [1.0]
    ranges = [
        HashRange(lo, hi) for lo, hi in zip(boundaries, boundaries[1:]) if hi > lo
    ]
    assert covers_unit_interval(ranges, fold=1)
    assert are_disjoint(ranges)
    assert total_length(ranges) == pytest.approx(1.0, abs=1e-9)


@given(
    start=st.floats(min_value=0.0, max_value=1.0),
    length=st.floats(min_value=0.0, max_value=1.0),
    probe=st.floats(min_value=0.0, max_value=0.999),
)
@settings(max_examples=300, deadline=None)
def test_property_wrapped_contains_matches_arc_membership(start, length, probe):
    """WrappedRange.contains agrees with direct circular arithmetic."""
    arc = WrappedRange(start, length)
    offset = (probe - start) % 1.0
    # Skip knife-edge cases at the arc boundary (float epsilon territory).
    if abs(offset - length) < 1e-7 or length < 1e-7:
        return
    expected = offset < length
    assert arc.contains(probe) == expected
